//! # ucm-cli — the `ucmc` driver
//!
//! A command-line front door to the pipeline:
//!
//! ```text
//! ucmc run <file.mini>       compile + execute, print output and counters
//! ucmc compare <file.mini>   unified vs conventional, Figure-5 style row
//! ucmc ir <file.mini>        dump the lowered IR
//! ucmc classify <file.mini>  per-reference ambiguity classification
//! ucmc analyze <file.mini>   must/may cache analysis: verdict table + coverage
//! ucmc trace <file.mini>     first memory references with their tags
//! ucmc check <file.mini>     oracle-checked run: coherence report (JSON lines)
//! ucmc faults <file.mini>    annotation fault-injection campaign (JSON lines)
//! ucmc timing <file.mini>    cycle-level report: all three modes priced
//! ucmc sweep                 parallel grid sweep -> BENCH_sweep.json + table
//! ucmc report <obs.jsonl>    summarise a captured observability stream
//! ucmc fuzz                  differential fuzzing batch (JSON lines)
//! ucmc shrink <file.mini>    minimize a failing program, keep its failure
//! ucmc serve                 long-running sweep service on a Unix socket
//! ucmc submit                send one sweep to a server, reassemble artifact
//! ucmc loadgen               drive a server, write BENCH_serve.json latencies
//! ```
//!
//! Every command additionally accepts the global `--obs-out FILE` flag:
//! it installs the `ucm-obs` collector for the duration of the command
//! and writes the captured JSON-lines stream (compile-phase spans, sweep
//! record/replay spans with per-worker jobs, VM and timing-sim counters)
//! to `FILE`. `ucmc report FILE` then renders the stream as per-phase,
//! per-counter, and per-worker tables. Without the flag nothing is
//! collected and command output (including `BENCH_sweep.json`) is
//! byte-identical to a build without the subsystem.
//!
//! Common flags: `--regs N`, `--paper` (frame-resident scalars, the paper's
//! measured codegen), `--conventional` (baseline management), `--safe` /
//! `--degrade-ambiguous` (treat every reference as ambiguous — provably
//! coherent degradation), `--cache-words N`, `--line-words N`, `--ways N`, `--limit N` (trace
//! length), `--max-steps N`, `--mem-words N` (VM limits).
//!
//! Fault-campaign flags: `--seed N` plus any of `--flip-bypass`,
//! `--drop-last-ref`, `--forge-last-ref`, `--swap-flavour`,
//! `--misclassify PCT` (no selection = all kinds).
//!
//! Timing-model flags (for `timing` and `sweep --timing`): `--wb-entries N`
//! (write-buffer depth, 0 = no buffer), `--hit-cycles N`, `--mem-cycles N`
//! (per-word memory time).
//!
//! `fuzz` takes no source file; its flags are `--seed N` (batch seed),
//! `--count N` (programs to generate and check, default 256), `--out DIR`
//! (write each failure's reproducer `.mini` + `.json` report — and a
//! minimized `.min.mini` for the first failure — into `DIR`), `--emit SEED`
//! (print the generated program for `SEED` and exit; corpus promotion),
//! plus the cache-geometry and VM-budget flags above. Budget exhaustion
//! skips a program; any differential or coherence failure exits 3.
//!
//! `shrink` minimizes `<file.mini>` while preserving its oracle failure
//! classification; `--inject` instead preserves "breaks coherence under
//! the seeded [`ucm_core::faults::desync_stores`] fault" (for exercising
//! the minimizer on a healthy compiler), and `--min-out PATH` writes the
//! minimized program to `PATH`.
//!
//! `analyze` solves the must/may LRU cache analysis for the compiled
//! program under the given cache geometry and prints one row per static
//! reference site (always-hit / never-hit / undecided, merged over call
//! contexts) plus the dynamic coverage of one profiled run. `--check`
//! cross-validates every verdict against `CacheSim` as the program runs
//! (a soundness violation exits 3); `--guided` additionally compiles
//! with analysis-guided bypass and reports the traffic deltas.
//!
//! `serve` binds a Unix socket and answers the JSON-lines protocol of
//! [`ucm_serve`] until a client sends `{"op":"shutdown"}`; `--jobs N`
//! pins its worker pool, `--cache-bytes N` budgets the content-addressed
//! artifact cache, `--max-request-bytes N` caps a request line, and
//! `--cache-dir PATH` persists the replay-cell store across restarts
//! (load-on-start, write-through, corrupt entry = miss). `submit`
//! sends one sweep (`--full`, `--timed`, `--seed N`,
//! `--no-stack-distance`, `--no-static-analysis`,
//! `--source FILE [--name NAME]` for a custom
//! workload) and reassembles the streamed artifact — byte-identical to
//! `ucmc sweep`'s — to stdout or `--out PATH`; `--stats` instead prints
//! the server's store counters; `--shutdown` instead asks
//! the server to exit (CI uses it to reap the background process).
//! `loadgen` drives a server
//! (`--socket PATH`, or a private self-hosted one) with a seeded mix of
//! repeated and fresh requests and writes throughput plus p50/p90/p99
//! latencies to `--out PATH` (default `BENCH_serve.json`);
//! `--min-warm-speedup X` turns the cold/warm ratio into a CI gate.
//!
//! `sweep` takes no source file; its flags are `--out PATH` (default
//! `BENCH_sweep.json`), `--quick` (the reduced CI grid), `--paper-sizes`
//! (full paper-size workloads — slow and memory-hungry), `--seed N`
//! (random-policy seed), `--timing` (price every cell in cycles with the
//! `ucm-timing` model), `--jobs N` (pin the worker-thread count, for
//! reproducible perf measurements on any core count; default = all
//! cores), and `--validate FILE` (schema-check an existing artifact
//! instead of sweeping).
//!
//! ## Exit codes
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | success (for `check`: coherent; for `faults`: campaign ran) |
//! | 1    | compile or runtime failure |
//! | 2    | usage error (bad command, flag, or file) |
//! | 3    | coherence violation (`check` found one, a `faults` baseline was incoherent, or `fuzz` found a failure) |
//!
//! The command logic lives in this library (returning the rendered output
//! and exit code) so it is unit-testable; `main.rs` is a thin wrapper.

use std::fmt::Write as _;
use ucm_analysis::alias::Classification;
use ucm_cache::{CacheConfig, CoherenceViolation, TimingConfig};
use ucm_core::check::run_with_oracle;
use ucm_core::evaluate::{compare, run_with_cache};
use ucm_core::faults::{run_campaign, CampaignConfig, FaultClass, FaultKind};
use ucm_core::pipeline::{compile, CompilerOptions};
use ucm_core::ManagementMode;
use ucm_machine::{run, PackedTrace, TraceRecord, VmConfig};

/// Exit code: success.
pub const EXIT_OK: i32 = 0;
/// Exit code: compile or runtime failure.
pub const EXIT_ERROR: i32 = 1;
/// Exit code: usage error.
pub const EXIT_USAGE: i32 = 2;
/// Exit code: a coherence violation was detected.
pub const EXIT_INCOHERENT: i32 = 3;

/// A CLI failure: message for stderr plus the process exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Suggested process exit code.
    pub code: i32,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

macro_rules! from_error {
    ($($ty:ty),+ $(,)?) => {
        $(impl From<$ty> for CliError {
            fn from(e: $ty) -> Self {
                CliError { message: e.to_string(), code: EXIT_ERROR }
            }
        })+
    };
}

from_error!(
    ucm_lang::LangError,
    ucm_ir::LowerError,
    ucm_core::CompileError,
    ucm_core::EvalError,
    ucm_machine::VmError,
);

/// Rendered command result: text for stdout plus the process exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmdOutput {
    /// Text to print.
    pub text: String,
    /// Process exit code ([`EXIT_OK`] unless the command reports a finding).
    pub code: i32,
}

impl CmdOutput {
    fn ok(text: String) -> Self {
        CmdOutput {
            text,
            code: EXIT_OK,
        }
    }
}

/// Options of the `fuzz` and `shrink` commands.
#[derive(Debug, Clone, Default)]
struct FuzzOpts {
    /// Programs per `fuzz` batch.
    count: usize,
    /// `fuzz --emit SEED`: print one generated program and exit.
    emit: Option<u64>,
    /// `fuzz --out DIR`: reproducer directory for failures.
    dir: Option<String>,
    /// `shrink --inject`: minimize against the seeded store-desync fault.
    inject: bool,
    /// `shrink --min-out PATH`: write the minimized program here.
    min_out: Option<String>,
}

/// Options of the file-less `sweep` command.
#[derive(Debug, Clone, Default)]
struct SweepOpts {
    quick: bool,
    paper_sizes: bool,
    timing: bool,
    /// `--no-stack-distance`: force every cell through the fused
    /// replayer (escape hatch; results are pinned byte-identical).
    no_stack_distance: bool,
    /// `--no-static-analysis`: disable the must/may classifier fast
    /// path (escape hatch; results are pinned byte-identical).
    no_static_analysis: bool,
    out: String,
    validate: Option<String>,
    seed: Option<u64>,
    jobs: Option<usize>,
}

/// Options of the `analyze` command.
#[derive(Debug, Clone, Default)]
struct AnalyzeOpts {
    /// `--check`: cross-validate every verdict against `CacheSim` while
    /// the program runs; any soundness violation exits 3.
    check: bool,
    /// `--guided`: also compile with analysis-guided bypass and report
    /// the traffic deltas under the analyzed cache.
    guided: bool,
}

/// Options of the file-less `serve`, `submit`, and `loadgen` commands.
#[derive(Debug, Clone, Default)]
struct ServeOpts {
    /// `--socket PATH`: where the server listens / a client dials.
    socket: Option<String>,
    /// `--jobs N`: worker threads for miss recompute (`0` = all cores).
    jobs: usize,
    /// `--cache-bytes N`: artifact-cache byte-budget override.
    cache_bytes: Option<usize>,
    /// `serve --max-request-bytes N`: request-line cap override.
    max_request_bytes: Option<usize>,
    /// `submit --full`: sweep the full grid instead of the quick one.
    full: bool,
    /// `submit --timed`: price every cell through the timing model.
    timed: bool,
    /// `submit --no-stack-distance`: engine escape hatch (deliberately
    /// not part of any cache key; results are pinned byte-identical).
    no_stack_distance: bool,
    /// `submit --no-static-analysis`: disable the server's classifier
    /// fast path for this request (same escape-hatch contract).
    no_static_analysis: bool,
    /// `submit --stats`: fetch server counters instead of sweeping.
    stats: bool,
    /// `serve --cache-dir PATH`: persist the artifact cache on disk.
    cache_dir: Option<String>,
    /// `submit`/`loadgen` `--seed N`.
    seed: Option<u64>,
    /// `submit --name NAME`: workload name for a custom source.
    name: Option<String>,
    /// `submit`/`loadgen` `--out PATH`.
    out: Option<String>,
    /// `loadgen --requests N`.
    requests: usize,
    /// `loadgen --min-warm-speedup X`: fail the run unless the warm
    /// quick-grid repeat is at least `X` times faster than cold.
    min_warm_speedup: Option<f64>,
    /// `submit --shutdown`: ask the server to exit instead of sweeping.
    shutdown: bool,
}

/// Parsed command line.
#[derive(Debug, Clone)]
pub struct Invocation {
    command: String,
    source: String,
    options: CompilerOptions,
    cache: CacheConfig,
    vm: VmConfig,
    limit: usize,
    seed: u64,
    kinds: Vec<FaultKind>,
    timing: TimingConfig,
    sweep: SweepOpts,
    fuzz: FuzzOpts,
    serve: ServeOpts,
    analyze: AnalyzeOpts,
    obs_out: Option<String>,
}

/// Usage text.
pub const USAGE: &str = "usage: ucmc <run|compare|ir|classify|analyze|trace|check|faults|timing> \
<file.mini> \
[--regs N] [--paper] [--conventional] [--safe|--degrade-ambiguous] \
[--cache-words N] [--line-words N] [--ways N] [--limit N] [--max-steps N] [--mem-words N] \
[--seed N] [--flip-bypass] [--drop-last-ref] [--forge-last-ref] \
[--swap-flavour] [--misclassify PCT] \
[--wb-entries N] [--hit-cycles N] [--mem-cycles N]\n\
\x20      ucmc analyze <file.mini> [--check] [--guided] [compiler/cache/VM flags]\n\
\x20      ucmc sweep [--out PATH] [--quick] [--paper-sizes] [--seed N] \
[--timing] [--jobs N] [--no-stack-distance] [--no-static-analysis] [--validate FILE]\n\
\x20      ucmc report <obs.jsonl>\n\
\x20      ucmc fuzz [--seed N] [--count N] [--out DIR] [--emit SEED] \
[--max-steps N] [--mem-words N] [--cache-words N] [--line-words N] [--ways N]\n\
\x20      ucmc shrink <file.mini> [--inject] [--min-out PATH] [budget/cache flags]\n\
\x20      ucmc serve --socket PATH [--jobs N] [--cache-bytes N] [--max-request-bytes N] \
[--cache-dir PATH]\n\
\x20      ucmc submit --socket PATH [--full] [--timed] [--seed N] [--no-stack-distance] \
[--no-static-analysis] [--source FILE] [--name NAME] [--out PATH] [--stats] [--shutdown]\n\
\x20      ucmc loadgen [--socket PATH] [--requests N] [--seed N] [--jobs N] \
[--cache-bytes N] [--out PATH] [--min-warm-speedup X]\n\
\x20      any command also accepts the global --obs-out FILE flag";

/// Parses arguments (excluding `argv0`) and reads the source file.
///
/// # Errors
///
/// Returns a [`CliError`] (exit code [`EXIT_USAGE`]) on unknown
/// commands/flags, malformed numbers, or unreadable files.
pub fn parse_args(args: &[String]) -> Result<Invocation, CliError> {
    let err = |m: &str| CliError {
        message: format!("{m}\n{USAGE}"),
        code: EXIT_USAGE,
    };
    // `--obs-out` is global: it may appear anywhere on the line, for any
    // command, so it is extracted before command dispatch.
    let mut args = args.to_vec();
    let mut obs_out = None;
    if let Some(i) = args.iter().position(|a| a == "--obs-out") {
        if i + 1 >= args.len() {
            return Err(err("--obs-out needs a path"));
        }
        args.remove(i);
        obs_out = Some(args.remove(i));
    }
    let mut it = args.iter();
    let command = it.next().ok_or_else(|| err("missing command"))?.clone();
    if ![
        "run", "compare", "ir", "classify", "analyze", "trace", "check", "faults", "timing",
        "sweep", "report", "fuzz", "shrink", "serve", "submit", "loadgen",
    ]
    .contains(&command.as_str())
    {
        return Err(err(&format!("unknown command `{command}`")));
    }
    if command == "sweep" {
        let mut inv = parse_sweep_args(command, it, err)?;
        inv.obs_out = obs_out;
        return Ok(inv);
    }
    if command == "fuzz" {
        let mut inv = parse_fuzz_args(command, it, err)?;
        inv.obs_out = obs_out;
        return Ok(inv);
    }
    if command == "serve" || command == "submit" || command == "loadgen" {
        let mut inv = parse_serve_args(command, it, err)?;
        inv.obs_out = obs_out;
        return Ok(inv);
    }
    if command == "report" {
        let path = it
            .next()
            .ok_or_else(|| err("missing observability stream file"))?;
        if let Some(extra) = it.next() {
            return Err(err(&format!("unknown report argument `{extra}`")));
        }
        let source = std::fs::read_to_string(path)
            .map_err(|e| err(&format!("cannot read `{path}`: {e}")))?;
        return Ok(Invocation {
            command,
            source,
            options: CompilerOptions::default(),
            cache: CacheConfig::default(),
            vm: VmConfig::default(),
            limit: 20,
            seed: 1,
            kinds: Vec::new(),
            timing: TimingConfig::default(),
            sweep: SweepOpts::default(),
            fuzz: FuzzOpts::default(),
            serve: ServeOpts::default(),
            analyze: AnalyzeOpts::default(),
            obs_out,
        });
    }
    let path = it.next().ok_or_else(|| err("missing source file"))?;
    let source =
        std::fs::read_to_string(path).map_err(|e| err(&format!("cannot read `{path}`: {e}")))?;
    // An empty (or all-whitespace) file is a bad *input*, not a bad
    // program: report it as a usage error with the offending path instead
    // of letting the parser produce an opaque unexpected-EOF compile error.
    if source.trim().is_empty() {
        return Err(err(&format!("`{path}` is empty: expected a Mini program")));
    }
    let mut options = CompilerOptions::default();
    let mut cache = CacheConfig::default();
    let mut vm = VmConfig::default();
    if command == "shrink" {
        // Shrink candidates can loop forever (deleting a loop's step
        // statement is a legal mutation), so the default budgets are the
        // fuzzer's, not the VM's; --max-steps / --mem-words still override.
        vm.max_steps = 2_000_000;
        vm.mem_words = 1 << 16;
    }
    let mut limit = 20usize;
    let mut seed = 1u64;
    let mut kinds: Vec<FaultKind> = Vec::new();
    let mut timing = TimingConfig::default();
    let mut fuzz = FuzzOpts::default();
    let mut analyze = AnalyzeOpts::default();
    while let Some(flag) = it.next() {
        let mut number = |what: &str| -> Result<usize, CliError> {
            it.next()
                .ok_or_else(|| err(&format!("{what} needs a value")))?
                .parse::<usize>()
                .map_err(|_| err(&format!("{what} needs a number")))
        };
        match flag.as_str() {
            "--regs" => options.num_regs = number("--regs")?,
            "--paper" => {
                let mode = options.mode;
                options = CompilerOptions {
                    mode,
                    num_regs: options.num_regs,
                    ..CompilerOptions::paper()
                };
            }
            "--conventional" => options.mode = ManagementMode::Conventional,
            "--safe" | "--degrade-ambiguous" => options.mode = ManagementMode::Safe,
            "--cache-words" => cache.size_words = number("--cache-words")?,
            "--line-words" => cache.line_words = number("--line-words")?,
            "--ways" => cache.associativity = number("--ways")?,
            "--limit" => limit = number("--limit")?,
            "--max-steps" => vm.max_steps = number("--max-steps")? as u64,
            "--mem-words" => vm.mem_words = number("--mem-words")?,
            "--seed" => seed = number("--seed")? as u64,
            "--wb-entries" => timing.write_buffer_entries = number("--wb-entries")?,
            "--hit-cycles" => timing.hit_cycles = number("--hit-cycles")? as u64,
            "--mem-cycles" => timing.mem_word_cycles = number("--mem-cycles")? as u64,
            "--inject" => {
                if command != "shrink" {
                    return Err(err("--inject is a `shrink` flag"));
                }
                fuzz.inject = true;
            }
            "--min-out" => {
                if command != "shrink" {
                    return Err(err("--min-out is a `shrink` flag"));
                }
                fuzz.min_out = Some(
                    it.next()
                        .ok_or_else(|| err("--min-out needs a path"))?
                        .clone(),
                );
            }
            "--check" => {
                if command != "analyze" {
                    return Err(err("--check is an `analyze` flag"));
                }
                analyze.check = true;
            }
            "--guided" => {
                if command != "analyze" {
                    return Err(err("--guided is an `analyze` flag"));
                }
                analyze.guided = true;
            }
            "--flip-bypass" => kinds.push(FaultKind::FlipBypass),
            "--drop-last-ref" => kinds.push(FaultKind::DropLastRef),
            "--forge-last-ref" => kinds.push(FaultKind::ForgeLastRef),
            "--swap-flavour" => kinds.push(FaultKind::SwapFlavour),
            "--misclassify" => {
                let pct = number("--misclassify")?;
                if pct > 100 {
                    return Err(err("--misclassify needs a percentage (0-100)"));
                }
                kinds.push(FaultKind::Misclassify(pct as u8));
            }
            other => return Err(err(&format!("unknown flag `{other}`"))),
        }
    }
    cache
        .validate()
        .map_err(|e| err(&format!("bad cache geometry: {e}")))?;
    Ok(Invocation {
        command,
        source,
        options,
        cache,
        vm,
        limit,
        seed,
        kinds,
        timing,
        sweep: SweepOpts::default(),
        fuzz,
        serve: ServeOpts::default(),
        analyze,
        obs_out,
    })
}

/// Parses the tail of a `fuzz` invocation (which takes no source file).
fn parse_fuzz_args(
    command: String,
    mut it: std::slice::Iter<'_, String>,
    err: impl Fn(&str) -> CliError,
) -> Result<Invocation, CliError> {
    let mut fuzz = FuzzOpts {
        count: 256,
        ..FuzzOpts::default()
    };
    let mut seed = 0u64;
    let mut cache = CacheConfig::default();
    // Fuzzing budgets, not interactive-run budgets: generated programs
    // are bounded by construction, so exhaustion means "too big", which
    // the oracle treats as a benign skip.
    let mut vm = VmConfig {
        max_steps: 2_000_000,
        mem_words: 1 << 16,
        ..VmConfig::default()
    };
    while let Some(flag) = it.next() {
        let mut number = |what: &str| -> Result<usize, CliError> {
            it.next()
                .ok_or_else(|| err(&format!("{what} needs a value")))?
                .parse::<usize>()
                .map_err(|_| err(&format!("{what} needs a number")))
        };
        match flag.as_str() {
            "--seed" => seed = number("--seed")? as u64,
            "--count" => {
                fuzz.count = number("--count")?;
                if fuzz.count == 0 {
                    return Err(err("--count needs at least one program"));
                }
            }
            "--emit" => fuzz.emit = Some(number("--emit")? as u64),
            "--out" => {
                fuzz.dir = Some(it.next().ok_or_else(|| err("--out needs a path"))?.clone());
            }
            "--max-steps" => vm.max_steps = number("--max-steps")? as u64,
            "--mem-words" => vm.mem_words = number("--mem-words")?,
            "--cache-words" => cache.size_words = number("--cache-words")?,
            "--line-words" => cache.line_words = number("--line-words")?,
            "--ways" => cache.associativity = number("--ways")?,
            other => return Err(err(&format!("unknown fuzz flag `{other}`"))),
        }
    }
    cache
        .validate()
        .map_err(|e| err(&format!("bad cache geometry: {e}")))?;
    Ok(Invocation {
        command,
        source: String::new(),
        options: CompilerOptions::default(),
        cache,
        vm,
        limit: 20,
        seed,
        kinds: Vec::new(),
        timing: TimingConfig::default(),
        sweep: SweepOpts::default(),
        fuzz,
        serve: ServeOpts::default(),
        analyze: AnalyzeOpts::default(),
        obs_out: None,
    })
}

/// Parses the tail of a `sweep` invocation (which takes no source file).
fn parse_sweep_args(
    command: String,
    mut it: std::slice::Iter<'_, String>,
    err: impl Fn(&str) -> CliError,
) -> Result<Invocation, CliError> {
    let mut sweep = SweepOpts {
        out: "BENCH_sweep.json".into(),
        ..SweepOpts::default()
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => sweep.quick = true,
            "--paper-sizes" => sweep.paper_sizes = true,
            "--timing" => sweep.timing = true,
            "--no-stack-distance" => sweep.no_stack_distance = true,
            "--no-static-analysis" => sweep.no_static_analysis = true,
            "--out" => {
                sweep.out = it.next().ok_or_else(|| err("--out needs a path"))?.clone();
            }
            "--validate" => {
                sweep.validate = Some(
                    it.next()
                        .ok_or_else(|| err("--validate needs a path"))?
                        .clone(),
                );
            }
            "--seed" => {
                let v = it
                    .next()
                    .ok_or_else(|| err("--seed needs a value"))?
                    .parse::<u64>()
                    .map_err(|_| err("--seed needs a number"))?;
                sweep.seed = Some(v);
            }
            "--jobs" => {
                let v = it
                    .next()
                    .ok_or_else(|| err("--jobs needs a value"))?
                    .parse::<usize>()
                    .map_err(|_| err("--jobs needs a number"))?;
                if v == 0 {
                    return Err(err("--jobs needs at least one thread"));
                }
                sweep.jobs = Some(v);
            }
            other => return Err(err(&format!("unknown sweep flag `{other}`"))),
        }
    }
    if sweep.quick && sweep.paper_sizes {
        return Err(err("--quick and --paper-sizes are mutually exclusive"));
    }
    Ok(Invocation {
        command,
        source: String::new(),
        options: CompilerOptions::default(),
        cache: CacheConfig::default(),
        vm: VmConfig::default(),
        limit: 20,
        seed: 1,
        kinds: Vec::new(),
        timing: TimingConfig::default(),
        sweep,
        fuzz: FuzzOpts::default(),
        serve: ServeOpts::default(),
        analyze: AnalyzeOpts::default(),
        obs_out: None,
    })
}

/// Parses the tail of a `serve`, `submit`, or `loadgen` invocation
/// (none of which take a positional source file; `submit --source FILE`
/// reads its Mini program here so execution never touches the
/// filesystem for inputs).
fn parse_serve_args(
    command: String,
    mut it: std::slice::Iter<'_, String>,
    err: impl Fn(&str) -> CliError,
) -> Result<Invocation, CliError> {
    let mut serve = ServeOpts {
        requests: 24,
        ..ServeOpts::default()
    };
    let mut source = String::new();
    let submit = command == "submit";
    let loadgen = command == "loadgen";
    while let Some(flag) = it.next() {
        let mut number = |what: &str| -> Result<usize, CliError> {
            it.next()
                .ok_or_else(|| err(&format!("{what} needs a value")))?
                .parse::<usize>()
                .map_err(|_| err(&format!("{what} needs a number")))
        };
        let only = |cmd: &str, ok: bool| -> Result<(), CliError> {
            if ok {
                Ok(())
            } else {
                Err(err(&format!("{flag} is a `{cmd}` flag")))
            }
        };
        match flag.as_str() {
            "--socket" => {
                serve.socket = Some(
                    it.next()
                        .ok_or_else(|| err("--socket needs a path"))?
                        .clone(),
                );
            }
            "--jobs" => {
                only("serve/loadgen", !submit)?;
                let v = number("--jobs")?;
                if v == 0 {
                    return Err(err("--jobs needs at least one thread"));
                }
                serve.jobs = v;
            }
            "--cache-bytes" => {
                only("serve/loadgen", !submit)?;
                let v = number("--cache-bytes")?;
                if v == 0 {
                    return Err(err("--cache-bytes needs a non-zero budget"));
                }
                serve.cache_bytes = Some(v);
            }
            "--max-request-bytes" => {
                only("serve", !submit && !loadgen)?;
                let v = number("--max-request-bytes")?;
                if v == 0 {
                    return Err(err("--max-request-bytes needs a non-zero cap"));
                }
                serve.max_request_bytes = Some(v);
            }
            "--full" => {
                only("submit", submit)?;
                serve.full = true;
            }
            "--timed" => {
                only("submit", submit)?;
                serve.timed = true;
            }
            "--no-stack-distance" => {
                only("submit", submit)?;
                serve.no_stack_distance = true;
            }
            "--no-static-analysis" => {
                only("submit", submit)?;
                serve.no_static_analysis = true;
            }
            "--stats" => {
                only("submit", submit)?;
                serve.stats = true;
            }
            "--cache-dir" => {
                only("serve", !submit && !loadgen)?;
                serve.cache_dir = Some(
                    it.next()
                        .ok_or_else(|| err("--cache-dir needs a path"))?
                        .clone(),
                );
            }
            "--shutdown" => {
                only("submit", submit)?;
                serve.shutdown = true;
            }
            "--seed" => {
                only("submit/loadgen", submit || loadgen)?;
                serve.seed = Some(number("--seed")? as u64);
            }
            "--source" => {
                only("submit", submit)?;
                let path = it.next().ok_or_else(|| err("--source needs a path"))?;
                source = std::fs::read_to_string(path)
                    .map_err(|e| err(&format!("cannot read `{path}`: {e}")))?;
                if source.trim().is_empty() {
                    return Err(err(&format!("`{path}` is empty: expected a Mini program")));
                }
                // A readable default workload name; --name overrides.
                if serve.name.is_none() {
                    serve.name = std::path::Path::new(path)
                        .file_stem()
                        .map(|s| s.to_string_lossy().into_owned());
                }
            }
            "--name" => {
                only("submit", submit)?;
                serve.name = Some(
                    it.next()
                        .ok_or_else(|| err("--name needs a value"))?
                        .clone(),
                );
            }
            "--out" => {
                only("submit/loadgen", submit || loadgen)?;
                serve.out = Some(it.next().ok_or_else(|| err("--out needs a path"))?.clone());
            }
            "--requests" => {
                only("loadgen", loadgen)?;
                let v = number("--requests")?;
                if v == 0 {
                    return Err(err("--requests needs at least one request"));
                }
                serve.requests = v;
            }
            "--min-warm-speedup" => {
                only("loadgen", loadgen)?;
                let v = it
                    .next()
                    .ok_or_else(|| err("--min-warm-speedup needs a value"))?
                    .parse::<f64>()
                    .map_err(|_| err("--min-warm-speedup needs a number"))?;
                if !v.is_finite() || v <= 0.0 {
                    return Err(err("--min-warm-speedup needs a positive ratio"));
                }
                serve.min_warm_speedup = Some(v);
            }
            other => return Err(err(&format!("unknown {command} flag `{other}`"))),
        }
    }
    if serve.socket.is_none() && !loadgen {
        return Err(err(&format!("{command} needs --socket PATH")));
    }
    if serve.name.is_some() && source.is_empty() {
        return Err(err("--name needs --source FILE"));
    }
    let sweep_flags = serve.full
        || serve.timed
        || serve.no_stack_distance
        || serve.no_static_analysis
        || serve.seed.is_some()
        || serve.out.is_some()
        || !source.is_empty();
    if serve.shutdown && (sweep_flags || serve.stats) {
        return Err(err("--shutdown takes no sweep flags"));
    }
    if serve.stats && sweep_flags {
        return Err(err("--stats takes no sweep flags"));
    }
    Ok(Invocation {
        command,
        source,
        options: CompilerOptions::default(),
        cache: CacheConfig::default(),
        vm: VmConfig::default(),
        limit: 20,
        seed: 1,
        kinds: Vec::new(),
        timing: TimingConfig::default(),
        sweep: SweepOpts::default(),
        fuzz: FuzzOpts::default(),
        serve,
        analyze: AnalyzeOpts::default(),
        obs_out: None,
    })
}

/// Executes an invocation, returning the text to print and the exit code.
///
/// With `--obs-out FILE` the `ucm-obs` collector is installed for the
/// duration of the command and the captured stream is written to `FILE`
/// afterwards — even when the command itself fails, so a crashing run
/// still leaves its phase timings behind.
///
/// # Errors
///
/// Propagates compile and runtime errors as [`CliError`].
pub fn execute(inv: &Invocation) -> Result<CmdOutput, CliError> {
    let Some(path) = &inv.obs_out else {
        return dispatch(inv);
    };
    ucm_obs::install(ucm_obs::DEFAULT_CAPACITY);
    let result = dispatch(inv);
    let stream = ucm_obs::uninstall().unwrap_or_default();
    if let Err(e) = std::fs::write(path, stream.to_jsonl()) {
        // A failed command keeps its own error; the write failure only
        // surfaces when the command itself succeeded.
        return result.and(Err(CliError {
            message: format!("cannot write `{path}`: {e}"),
            code: EXIT_ERROR,
        }));
    }
    result
}

fn dispatch(inv: &Invocation) -> Result<CmdOutput, CliError> {
    match inv.command.as_str() {
        "run" => cmd_run(inv),
        "compare" => cmd_compare(inv),
        "ir" => cmd_ir(inv),
        "classify" => cmd_classify(inv),
        "analyze" => cmd_analyze(inv),
        "trace" => cmd_trace(inv),
        "check" => cmd_check(inv),
        "faults" => cmd_faults(inv),
        "timing" => cmd_timing(inv),
        "sweep" => cmd_sweep(inv),
        "report" => cmd_report(inv),
        "fuzz" => cmd_fuzz(inv),
        "shrink" => cmd_shrink(inv),
        "serve" => cmd_serve(inv),
        "submit" => cmd_submit(inv),
        "loadgen" => cmd_loadgen(inv),
        _ => unreachable!("parse_args validated the command"),
    }
}

/// Minimal JSON string escaping for the compact single-line events.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn cmd_fuzz(inv: &Invocation) -> Result<CmdOutput, CliError> {
    use ucm_fuzz::{generate_source, run_batch, shrink, BatchConfig, CheckConfig};

    // Corpus promotion: print one generated program and stop.
    if let Some(seed) = inv.fuzz.emit {
        return Ok(CmdOutput::ok(generate_source(seed)));
    }

    let check = CheckConfig {
        max_steps: inv.vm.max_steps,
        mem_words: inv.vm.mem_words,
        cache: inv.cache,
    };
    let cfg = BatchConfig {
        seed: inv.seed,
        count: inv.fuzz.count,
        check: check.clone(),
    };
    let report = run_batch(&cfg);

    let mut out = String::new();
    for (seed, _, failure) in &report.failures {
        let _ = writeln!(
            out,
            r#"{{"event":"fuzz-failure","seed":{seed},"kind":"{}","detail":"{}"}}"#,
            failure.kind,
            json_escape(&failure.detail),
        );
    }

    // Reproducer artifacts, for CI upload and offline triage: the failing
    // source, the structured report, and (for the first failure) a
    // minimized reproducer preserving the failure classification.
    if let (Some(dir), false) = (&inv.fuzz.dir, report.failures.is_empty()) {
        std::fs::create_dir_all(dir).map_err(|e| CliError {
            message: format!("cannot create `{dir}`: {e}"),
            code: EXIT_ERROR,
        })?;
        let write = |path: &str, data: &str| -> Result<(), CliError> {
            std::fs::write(path, data).map_err(|e| CliError {
                message: format!("cannot write `{path}`: {e}"),
                code: EXIT_ERROR,
            })
        };
        for (i, (seed, source, failure)) in report.failures.iter().enumerate() {
            write(&format!("{dir}/seed_{seed}.mini"), source)?;
            write(
                &format!("{dir}/seed_{seed}.json"),
                &failure.to_json(Some(*seed), source),
            )?;
            if i == 0 {
                let kind = failure.kind;
                if let Ok(min) = shrink(source, |cand| {
                    ucm_fuzz::check_source(cand, &check).failure_kind() == Some(kind)
                }) {
                    write(&format!("{dir}/seed_{seed}.min.mini"), &min.source)?;
                }
            }
        }
        let _ = writeln!(
            out,
            r#"{{"event":"fuzz-artifacts","dir":"{}","failures":{}}}"#,
            json_escape(dir),
            report.failures.len(),
        );
    }

    let _ = writeln!(
        out,
        r#"{{"event":"fuzz","seed":{},"count":{},"passed":{},"skipped":{},"failures":{}}}"#,
        report.seed,
        report.total(),
        report.passed,
        report.skipped,
        report.failures.len(),
    );
    Ok(CmdOutput {
        text: out,
        code: if report.failures.is_empty() {
            EXIT_OK
        } else {
            EXIT_INCOHERENT
        },
    })
}

fn cmd_shrink(inv: &Invocation) -> Result<CmdOutput, CliError> {
    use ucm_fuzz::{check_source, seeded_fault_fires, shrink, CheckConfig};

    let check = CheckConfig {
        max_steps: inv.vm.max_steps,
        mem_words: inv.vm.mem_words,
        cache: inv.cache,
    };
    let outcome = if inv.fuzz.inject {
        if !seeded_fault_fires(&inv.source, &check) {
            return Err(CliError {
                message: "the program does not reproduce the injected store-desync fault \
                          (no store→reload pair survives compilation)"
                    .into(),
                code: EXIT_ERROR,
            });
        }
        shrink(&inv.source, |cand| seeded_fault_fires(cand, &check))
    } else {
        let Some(kind) = check_source(&inv.source, &check).failure_kind() else {
            return Err(CliError {
                message: "the program passes the differential oracle; nothing to shrink \
                          (use --inject to minimize against the seeded store-desync fault)"
                    .into(),
                code: EXIT_ERROR,
            });
        };
        shrink(&inv.source, |cand| {
            check_source(cand, &check).failure_kind() == Some(kind)
        })
    }
    .map_err(|e| CliError {
        message: e,
        code: EXIT_ERROR,
    })?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"{{"event":"shrink","original_stmts":{},"final_stmts":{},"remaining_pct":{:.1},"rounds":{},"candidates":{}}}"#,
        outcome.original_stmts,
        outcome.final_stmts,
        outcome.remaining_pct(),
        outcome.rounds,
        outcome.candidates_tried,
    );
    match &inv.fuzz.min_out {
        Some(path) => {
            std::fs::write(path, &outcome.source).map_err(|e| CliError {
                message: format!("cannot write `{path}`: {e}"),
                code: EXIT_ERROR,
            })?;
            let _ = writeln!(
                out,
                r#"{{"event":"shrink-out","file":"{}"}}"#,
                json_escape(path)
            );
        }
        None => out.push_str(&outcome.source),
    }
    Ok(CmdOutput::ok(out))
}

fn cmd_sweep(inv: &Invocation) -> Result<CmdOutput, CliError> {
    use ucm_bench::sweep::{run_sweep, validate_sweep_json, SweepConfig, SweepError};

    // Validation-only mode: schema-check an existing artifact.
    if let Some(path) = &inv.sweep.validate {
        let text = std::fs::read_to_string(path).map_err(|e| CliError {
            message: format!("cannot read `{path}`: {e}"),
            code: EXIT_USAGE,
        })?;
        let summary = validate_sweep_json(&text).map_err(|e| CliError {
            message: format!("`{path}` is not a valid sweep artifact: {e}"),
            code: EXIT_ERROR,
        })?;
        let mut out = String::new();
        let _ = writeln!(
            out,
            r#"{{"event":"sweep-validate","file":"{path}","schema_version":{},"traces":{},"cells":{},"timed":{}}}"#,
            summary.schema_version, summary.traces, summary.cells, summary.timed,
        );
        return Ok(CmdOutput::ok(out));
    }

    let mut cfg = if inv.sweep.quick {
        SweepConfig::quick()
    } else {
        SweepConfig::full()
    };
    if inv.sweep.paper_sizes {
        cfg.workloads = ucm_workloads::paper_suite();
        cfg.suite = "paper".into();
    }
    if inv.sweep.timing {
        cfg.timing = Some(inv.timing);
    }
    if let Some(seed) = inv.sweep.seed {
        cfg.seed = seed;
    }
    if inv.sweep.no_stack_distance {
        cfg.use_stack_distance = false;
    }
    if inv.sweep.no_static_analysis {
        cfg.use_static_analysis = false;
    }
    let result = match inv.sweep.jobs {
        // A pinned pool makes perf measurements and CI smoke runs
        // reproducible on any core count. The grid result is identical
        // either way; only the fan-out width changes.
        Some(n) => {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .map_err(|e| CliError {
                    message: format!("cannot build a {n}-thread pool: {e}"),
                    code: EXIT_ERROR,
                })?;
            pool.install(|| run_sweep(&cfg))
        }
        None => run_sweep(&cfg),
    };
    let report = result.map_err(|e| CliError {
        message: e.to_string(),
        code: match e {
            SweepError::Config(_) | SweepError::EmptyGrid => EXIT_USAGE,
            _ => EXIT_ERROR,
        },
    })?;
    let artifact = report.to_json();
    std::fs::write(&inv.sweep.out, &artifact).map_err(|e| CliError {
        message: format!("cannot write `{}`: {e}", inv.sweep.out),
        code: EXIT_ERROR,
    })?;
    let mut out = report.table();
    let _ = writeln!(
        out,
        r#"{{"event":"sweep","suite":"{}","traces":{},"cells":{},"out":"{}"}}"#,
        report.suite,
        report.traces.len(),
        report.cells.len(),
        inv.sweep.out,
    );
    // Phase timings for operator logs (CI echoes stdout); never part of
    // the artifact, which stays machine-independent.
    let _ = writeln!(
        out,
        r#"{{"event":"sweep-timing","record_s":{:.3},"replay_s":{:.3},"stack_cells":{},"fused_cells":{},"analysis_cells":{}}}"#,
        report.timings.record.as_secs_f64(),
        report.timings.replay.as_secs_f64(),
        report.timings.stack_cells,
        report.timings.fused_cells,
        report.timings.analysis_cells,
    );
    Ok(CmdOutput::ok(out))
}

/// Runs the long-lived sweep/compile server on a Unix socket until a
/// client sends `{"op":"shutdown"}`.
///
/// The ready line goes straight to stdout (not [`CmdOutput`]): the
/// accept loop blocks until shutdown, and an operator or CI script needs
/// the line *before* submitting requests.
fn cmd_serve(inv: &Invocation) -> Result<CmdOutput, CliError> {
    use std::io::Write as _;
    use ucm_serve::server::{ServeConfig, Server};

    let socket = inv.serve.socket.as_deref().expect("parse_args required it");
    let mut cfg = ServeConfig::new(socket);
    cfg.jobs = inv.serve.jobs;
    if let Some(bytes) = inv.serve.cache_bytes {
        cfg.cache_bytes = bytes;
    }
    if let Some(bytes) = inv.serve.max_request_bytes {
        cfg.max_request_bytes = bytes;
    }
    if let Some(dir) = &inv.serve.cache_dir {
        cfg.cache_dir = Some(std::path::PathBuf::from(dir));
    }
    let server = Server::bind(cfg).map_err(|e| CliError {
        message: format!("cannot serve on `{socket}`: {e}"),
        code: EXIT_ERROR,
    })?;
    println!(
        r#"{{"event":"serve-ready","socket":"{}","jobs":{},"cache_bytes":{}}}"#,
        json_escape(socket),
        inv.serve.jobs,
        inv.serve.cache_bytes.unwrap_or(256 << 20),
    );
    let _ = std::io::stdout().flush();
    server.run().map_err(|e| CliError {
        message: format!("serve loop failed: {e}"),
        code: EXIT_ERROR,
    })?;
    Ok(CmdOutput::ok(format!(
        "{{\"event\":\"serve-done\",\"socket\":\"{}\"}}\n",
        json_escape(socket)
    )))
}

/// Submits one sweep to a running server and reassembles the streamed
/// artifact — byte-identical to what `ucmc sweep` would have written.
fn cmd_submit(inv: &Invocation) -> Result<CmdOutput, CliError> {
    use ucm_serve::client::{Client, ClientError};
    use ucm_serve::protocol::{SourceSpec, SweepRequest};

    let socket = inv.serve.socket.as_deref().expect("parse_args required it");
    let fail = |e: ClientError| CliError {
        message: format!("submit to `{socket}` failed: {e}"),
        code: EXIT_ERROR,
    };
    let mut client = Client::connect(std::path::Path::new(socket)).map_err(fail)?;
    if inv.serve.shutdown {
        client.shutdown().map_err(fail)?;
        return Ok(CmdOutput::ok(format!(
            "{{\"event\":\"submit-shutdown\",\"socket\":\"{}\"}}\n",
            json_escape(socket)
        )));
    }
    if inv.serve.stats {
        let s = client.stats().map_err(fail)?;
        let mut out = format!(
            r#"{{"event":"submit-stats","requests":{},"cells_hits":{},"cells_misses":{},"cells_entries":{}"#,
            s.requests, s.cells.hits, s.cells.misses, s.cells.entries,
        );
        if let Some(d) = s.disk {
            let _ = write!(
                out,
                r#","disk_loaded":{},"disk_hits":{},"disk_corrupt":{},"disk_write_errors":{}"#,
                d.loaded, d.hits, d.corrupt, d.write_errors,
            );
        }
        out.push_str("}\n");
        return Ok(CmdOutput::ok(out));
    }
    let request = SweepRequest {
        full: inv.serve.full,
        timing: inv.serve.timed,
        seed: inv.serve.seed,
        source: (!inv.source.is_empty()).then(|| SourceSpec {
            name: inv.serve.name.clone().unwrap_or_else(|| "custom".into()),
            text: inv.source.clone(),
        }),
        geometries: None,
        stack_distance: !inv.serve.no_stack_distance,
        static_analysis: !inv.serve.no_static_analysis,
    };
    let reply = client.sweep(&request).map_err(fail)?;
    let mut out = String::new();
    match &inv.serve.out {
        Some(path) => {
            std::fs::write(path, &reply.artifact).map_err(|e| CliError {
                message: format!("cannot write `{path}`: {e}"),
                code: EXIT_ERROR,
            })?;
            let _ = writeln!(
                out,
                r#"{{"event":"submit","cells":{},"cold":{},"hits":{},"misses":{},"elapsed_us":{},"out":"{}"}}"#,
                reply.cells,
                reply.cold,
                reply.hits,
                reply.misses,
                reply.elapsed_us,
                json_escape(path),
            );
        }
        // Without --out the artifact itself is the output, so it can be
        // piped; the summary would corrupt the JSON document.
        None => out.push_str(&reply.artifact),
    }
    Ok(CmdOutput::ok(out))
}

/// Drives a server with a seeded mix of repeated and fresh requests and
/// writes the schema-versioned `BENCH_serve.json` latency report.
fn cmd_loadgen(inv: &Invocation) -> Result<CmdOutput, CliError> {
    use ucm_serve::loadgen::{run_loadgen, validate_serve_json, LoadgenConfig};

    let mut cfg = LoadgenConfig {
        requests: inv.serve.requests,
        socket: inv.serve.socket.as_deref().map(std::path::PathBuf::from),
        jobs: inv.serve.jobs,
        ..LoadgenConfig::default()
    };
    if let Some(seed) = inv.serve.seed {
        cfg.seed = seed;
    }
    if let Some(bytes) = inv.serve.cache_bytes {
        cfg.cache_bytes = bytes;
    }
    let report = run_loadgen(&cfg).map_err(|e| CliError {
        message: format!("loadgen failed: {e}"),
        code: EXIT_ERROR,
    })?;
    let text = report.to_json();
    // The generated report must pass its own validator before it is
    // allowed to land on disk — same contract as the sweep artifact.
    validate_serve_json(&text).map_err(|e| CliError {
        message: format!("generated report failed validation: {e}"),
        code: EXIT_ERROR,
    })?;
    let out_path = inv.serve.out.as_deref().unwrap_or("BENCH_serve.json");
    std::fs::write(out_path, &text).map_err(|e| CliError {
        message: format!("cannot write `{out_path}`: {e}"),
        code: EXIT_ERROR,
    })?;
    let mut out = String::new();
    let speedup = report
        .warm_speedup
        .map_or("null".into(), |s| format!("{s:.2}"));
    let _ = writeln!(
        out,
        r#"{{"event":"loadgen","requests":{},"cold":{},"warm":{},"throughput_rps":{:.2},"warm_speedup":{},"out":"{}"}}"#,
        report.requests,
        report.cold_requests,
        report.warm_requests,
        report.throughput_rps,
        speedup,
        json_escape(out_path),
    );
    let _ = writeln!(
        out,
        r#"{{"event":"loadgen-latency","overall_p50_us":{},"overall_p99_us":{},"warm_p50_us":{},"warm_p99_us":{}}}"#,
        report.overall.p50_us, report.overall.p99_us, report.warm.p50_us, report.warm.p99_us,
    );
    if let Some(min) = inv.serve.min_warm_speedup {
        match report.warm_speedup {
            Some(got) if got >= min => {}
            Some(got) => {
                return Err(CliError {
                    message: format!(
                        "warm speedup {got:.2}x is below the required {min:.2}x\n{out}"
                    ),
                    code: EXIT_ERROR,
                });
            }
            None => {
                return Err(CliError {
                    message: format!(
                        "the mix produced no warm quick repeat to measure a speedup\n{out}"
                    ),
                    code: EXIT_ERROR,
                });
            }
        }
    }
    Ok(CmdOutput::ok(out))
}

/// Summarises a `--obs-out` JSON-lines stream: per-phase span table,
/// counter totals, per-worker utilisation, and (when the stream came from
/// a sweep) the same `sweep-timing` line the sweep itself prints.
fn cmd_report(inv: &Invocation) -> Result<CmdOutput, CliError> {
    use std::collections::BTreeMap;
    use ucm_bench::json::{parse, Json};

    let bad = |line: usize, msg: String| CliError {
        message: format!("invalid observability stream (line {line}): {msg}"),
        code: EXIT_ERROR,
    };

    #[derive(Default)]
    struct Phase {
        count: u64,
        total_us: u64,
        max_us: u64,
    }
    let mut meta: Option<(u64, u64)> = None;
    let mut phases: BTreeMap<String, Phase> = BTreeMap::new();
    // counter name -> (samples, sum)
    let mut counters: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    // worker id -> (jobs, busy_us), from `*.job` spans
    let mut workers: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    let mut events = 0u64;
    let mut body = 0u64;
    for (i, line) in inv.source.lines().enumerate() {
        let n = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v = parse(line).map_err(|e| bad(n, e.to_string()))?;
        if v.get("schema_version").and_then(Json::as_num) != Some(ucm_obs::SCHEMA_VERSION as f64) {
            return Err(bad(
                n,
                format!(
                    "unsupported schema_version (want {})",
                    ucm_obs::SCHEMA_VERSION
                ),
            ));
        }
        let ty = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| bad(n, "missing type".into()))?;
        let num = |key: &str| {
            v.get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| bad(n, format!("missing {key}")))
        };
        let name = || {
            v.get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| bad(n, "missing name".into()))
        };
        match ty {
            "meta" => {
                if n != 1 {
                    return Err(bad(n, "meta must be the first line".into()));
                }
                meta = Some((num("records")? as u64, num("dropped")? as u64));
            }
            "span" => {
                if meta.is_none() {
                    return Err(bad(n, "missing meta line".into()));
                }
                body += 1;
                let name = name()?;
                num("t_us")?;
                num("worker")?;
                let dur = num("dur_us")? as u64;
                let p = phases.entry(name.to_string()).or_default();
                p.count += 1;
                p.total_us += dur;
                p.max_us = p.max_us.max(dur);
                if name.ends_with(".job") {
                    let w = workers.entry(num("worker")? as u64).or_default();
                    w.0 += 1;
                    w.1 += dur;
                }
            }
            "counter" => {
                if meta.is_none() {
                    return Err(bad(n, "missing meta line".into()));
                }
                body += 1;
                let c = counters.entry(name()?.to_string()).or_default();
                c.0 += 1;
                c.1 += num("value")? as u64;
            }
            "event" => {
                if meta.is_none() {
                    return Err(bad(n, "missing meta line".into()));
                }
                body += 1;
                name()?;
                events += 1;
            }
            other => return Err(bad(n, format!("unknown record type `{other}`"))),
        }
    }
    let (records, dropped) = meta.ok_or_else(|| bad(1, "missing meta line".into()))?;
    if records != body {
        return Err(bad(
            1,
            format!("meta claims {records} records but the stream holds {body}"),
        ));
    }

    let mut out = String::new();
    if !phases.is_empty() {
        let rows: Vec<Vec<String>> = phases
            .iter()
            .map(|(name, p)| {
                vec![
                    name.clone(),
                    p.count.to_string(),
                    format!("{:.3}", p.total_us as f64 / 1e6),
                    format!("{:.3}", p.total_us as f64 / p.count as f64 / 1e3),
                    format!("{:.3}", p.max_us as f64 / 1e3),
                ]
            })
            .collect();
        out.push_str(&ucm_bench::format_table(
            &["phase", "count", "total s", "mean ms", "max ms"],
            &rows,
        ));
        out.push('\n');
    }
    if !counters.is_empty() {
        let rows: Vec<Vec<String>> = counters
            .iter()
            .map(|(name, (samples, sum))| vec![name.clone(), samples.to_string(), sum.to_string()])
            .collect();
        out.push_str(&ucm_bench::format_table(
            &["counter", "samples", "total"],
            &rows,
        ));
        out.push('\n');
    }
    if !workers.is_empty() {
        let busy_total: u64 = workers.values().map(|w| w.1).sum();
        let rows: Vec<Vec<String>> = workers
            .iter()
            .map(|(id, (jobs, busy))| {
                vec![
                    id.to_string(),
                    jobs.to_string(),
                    format!("{:.3}", *busy as f64 / 1e6),
                    format!("{:.1}", 100.0 * *busy as f64 / busy_total.max(1) as f64),
                ]
            })
            .collect();
        out.push_str(&ucm_bench::format_table(
            &["worker", "jobs", "busy s", "share %"],
            &rows,
        ));
        out.push('\n');
    }
    let secs = |name: &str| phases.get(name).map(|p| p.total_us as f64 / 1e6);
    if let (Some(record), Some(replay)) = (secs("sweep.record"), secs("sweep.replay")) {
        let _ = writeln!(
            out,
            r#"{{"event":"sweep-timing","record_s":{record:.3},"replay_s":{replay:.3}}}"#,
        );
    }
    let _ = writeln!(
        out,
        r#"{{"event":"report","schema_version":{},"records":{records},"dropped":{dropped},"spans":{},"counters":{},"events":{events}}}"#,
        ucm_obs::SCHEMA_VERSION,
        phases.values().map(|p| p.count).sum::<u64>(),
        counters.values().map(|c| c.0).sum::<u64>(),
    );
    Ok(CmdOutput::ok(out))
}

fn cmd_timing(inv: &Invocation) -> Result<CmdOutput, CliError> {
    use ucm_core::compare_timing;

    let cmp = compare_timing(
        "program",
        &inv.source,
        &inv.options,
        inv.cache,
        inv.timing,
        &inv.vm,
    )?;
    let mut out = String::new();
    let _ = writeln!(out, "output: {:?}", cmp.unified.outcome.output);
    let _ = writeln!(
        out,
        "model: hit {}c, mem {}c/word, write buffer {} entries",
        inv.timing.hit_cycles, inv.timing.mem_word_cycles, inv.timing.write_buffer_entries
    );
    for mode in [
        ManagementMode::Unified,
        ManagementMode::Conventional,
        ManagementMode::Safe,
    ] {
        let r = cmp.run(mode);
        let t = &r.report;
        let _ = writeln!(
            out,
            "{:<12} {:>9} cycles  cpi {:>6.3}  bus busy {:>7}  stalls r/w/h {}/{}/{}",
            mode.to_string(),
            t.total_cycles,
            t.cpi(),
            t.bus_busy_cycles,
            t.read_stall_cycles,
            t.write_stall_cycles,
            t.hazard_stall_cycles,
        );
    }
    for (label, mode) in [
        ("unified", ManagementMode::Unified),
        ("safe", ManagementMode::Safe),
    ] {
        let _ = writeln!(
            out,
            "cycle reduction ({label}): {:.1}%  (speedup {:.3}x)",
            cmp.cycle_reduction_pct(mode),
            cmp.speedup(mode)
        );
    }
    Ok(CmdOutput::ok(out))
}

fn cmd_run(inv: &Invocation) -> Result<CmdOutput, CliError> {
    let compiled = compile(&inv.source, &inv.options)?;
    let m = run_with_cache(&compiled, inv.cache, &inv.vm)?;
    let mut out = String::new();
    for v in &m.outcome.output {
        let _ = writeln!(out, "{v}");
    }
    let _ = writeln!(out, "-- steps: {}", m.outcome.steps);
    let _ = writeln!(
        out,
        "-- data refs: {} ({:.1}% unambiguous, {:.1}% bypassed)",
        m.counts.total(),
        100.0 * m.counts.unambiguous_fraction(),
        100.0 * m.counts.bypass_fraction()
    );
    let _ = writeln!(
        out,
        "-- cache: {} refs, {:.1}% miss, {} bus words",
        m.cache.cache_refs(),
        100.0 * m.cache.miss_rate(),
        m.cache.bus_words()
    );
    Ok(CmdOutput::ok(out))
}

fn cmd_compare(inv: &Invocation) -> Result<CmdOutput, CliError> {
    let cmp = compare("program", &inv.source, &inv.options, inv.cache, &inv.vm)?;
    let mut out = String::new();
    let _ = writeln!(out, "output: {:?}", cmp.unified.outcome.output);
    let _ = writeln!(
        out,
        "static unambiguous : {:>6.1}%",
        cmp.static_unambiguous_pct()
    );
    let _ = writeln!(
        out,
        "dynamic unambiguous: {:>6.1}%",
        cmp.dynamic_unambiguous_pct()
    );
    let _ = writeln!(
        out,
        "cache-ref reduction: {:>6.1}%",
        cmp.cache_ref_reduction_pct()
    );
    let _ = writeln!(
        out,
        "bus words          : {} -> {}",
        cmp.conventional.cache.bus_words(),
        cmp.unified.cache.bus_words()
    );
    let _ = writeln!(
        out,
        "write-backs        : {} -> {}",
        cmp.conventional.cache.writebacks, cmp.unified.cache.writebacks
    );
    Ok(CmdOutput::ok(out))
}

fn cmd_ir(inv: &Invocation) -> Result<CmdOutput, CliError> {
    let checked = ucm_lang::parse_and_check(&inv.source)?;
    let module = ucm_ir::lower_with(
        &checked,
        &ucm_ir::LowerOptions {
            promote_scalars: inv.options.promote_scalars,
        },
    )?;
    Ok(CmdOutput::ok(ucm_ir::print::module_to_string(&module)))
}

fn cmd_classify(inv: &Invocation) -> Result<CmdOutput, CliError> {
    let checked = ucm_lang::parse_and_check(&inv.source)?;
    let module = ucm_ir::lower_with(
        &checked,
        &ucm_ir::LowerOptions {
            promote_scalars: inv.options.promote_scalars,
        },
    )?;
    let classes = Classification::compute(&module);
    let mut out = String::new();
    for fid in module.func_ids() {
        for (iref, instr) in module.func(fid).instrs() {
            if let Some(class) = classes.get(fid, iref) {
                let _ = writeln!(
                    out,
                    "{:<14} {:<48} {class:?}",
                    module.func(fid).name,
                    instr.to_string()
                );
            }
        }
    }
    let c = classes.static_counts();
    let _ = writeln!(
        out,
        "-- {} unambiguous / {} ambiguous ({:.1}%)",
        c.unambiguous,
        c.ambiguous,
        100.0 * c.unambiguous_fraction()
    );
    Ok(CmdOutput::ok(out))
}

/// Per-reference must/may cache-analysis table, dynamic coverage, and
/// (with `--check`) a live cross-validation against `CacheSim`.
fn cmd_analyze(inv: &Invocation) -> Result<CmdOutput, CliError> {
    use std::collections::BTreeMap;
    use ucm_analysis::cachedom::Tri;
    use ucm_cache::classify::{cross_validate, ClassifyBase};
    use ucm_machine::SiteProfile;

    let compiled = compile(&inv.source, &inv.options)?;
    let mut out = String::new();
    let unsupported = |reason: String, mut out: String| {
        let _ = writeln!(
            out,
            r#"{{"event":"analyze","supported":false,"reason":"{}"}}"#,
            json_escape(&reason),
        );
        Ok(CmdOutput::ok(out))
    };
    let base = match ClassifyBase::new(&compiled.program, inv.vm.mem_words) {
        Ok(b) => b,
        Err(e) => return unsupported(e.to_string(), out),
    };
    let class = match base.classify(&inv.cache) {
        Ok(c) => c,
        Err(e) => return unsupported(e.to_string(), out),
    };

    // One table row per static site, merged over call contexts: a
    // verdict that differs by context prints as `varies`.
    let merged: BTreeMap<(i64, u8), (Option<Tri>, &ucm_cache::classify::SiteVerdict)> = {
        let mut m = BTreeMap::new();
        for (&(_, pc, sub), v) in class.verdicts() {
            m.entry((pc, sub))
                .and_modify(|(tri, _): &mut (Option<Tri>, _)| {
                    if *tri != Some(v.hit) {
                        *tri = None;
                    }
                })
                .or_insert((Some(v.hit), v));
        }
        m
    };
    let site_name = |pc: i64| -> String {
        for f in &compiled.program.funcs {
            let local = pc - f.code_base;
            if local >= 0 && (local as usize) < f.code.len() {
                return format!("{}+{local}", f.name);
            }
        }
        format!("@{pc}")
    };
    let mut always = 0usize;
    let mut never = 0usize;
    let mut mixed = 0usize;
    for (&(pc, sub), &(tri, v)) in &merged {
        let verdict = match tri {
            Some(Tri::Always) => {
                always += 1;
                "always-hit"
            }
            Some(Tri::Never) => {
                never += 1;
                "never-hit"
            }
            Some(Tri::Sometimes) => {
                mixed += 1;
                "sometimes"
            }
            None => {
                mixed += 1;
                "varies"
            }
        };
        let _ = writeln!(
            out,
            "{:<16} ref{:<2} {:<8} {:<12} addr={}",
            site_name(pc),
            sub,
            if v.is_write { "store" } else { "load" },
            verdict,
            match v.resolved {
                Some(a) => a.to_string(),
                None => "?".into(),
            },
        );
    }

    // Dynamic coverage: profile one run, then ask the analysis how many
    // of its references sit at decisive sites.
    let mut profile = SiteProfile::new(compiled.program.main);
    run(&compiled.program, &mut profile, &inv.vm)?;
    let cov = base.coverage(&class, &profile).unwrap_or_default();
    let _ = writeln!(
        out,
        "-- {} sites: {} always-hit, {} never-hit, {} undecided; dynamic coverage {:.1}% ({}/{} refs)",
        merged.len(),
        always,
        never,
        mixed,
        100.0 * cov.ref_fraction(),
        cov.classified_refs,
        cov.total_refs,
    );

    if inv.analyze.guided {
        let guided = compile(
            &inv.source,
            &CompilerOptions {
                guided_bypass: Some(ucm_core::GuidedBypassConfig {
                    cache: inv.cache,
                    mem_words: inv.vm.mem_words,
                }),
                ..inv.options
            },
        );
        match guided {
            Err(e) => {
                let _ = writeln!(out, "-- guided bypass unavailable: {e}");
            }
            Ok(g) => {
                let report = g.guided.unwrap_or_default();
                let before = run_with_cache(&compiled, inv.cache, &inv.vm)?;
                let after = run_with_cache(&g, inv.cache, &inv.vm)?;
                let _ = writeln!(
                    out,
                    r#"{{"event":"analyze-guided","rewritten_loads":{},"rewritten_stores":{},"iterations":{},"shrunk":{},"vetoed":{},"fills":[{},{}],"writebacks":[{},{}],"words_from_memory":[{},{}],"words_to_memory":[{},{}]}}"#,
                    report.rewritten_loads,
                    report.rewritten_stores,
                    report.iterations,
                    report.shrunk,
                    report.vetoed,
                    before.cache.fills,
                    after.cache.fills,
                    before.cache.writebacks,
                    after.cache.writebacks,
                    before.cache.words_from_memory,
                    after.cache.words_from_memory,
                    before.cache.words_to_memory,
                    after.cache.words_to_memory,
                );
            }
        }
    }

    let checked = if inv.analyze.check {
        let report =
            cross_validate(&compiled.program, &inv.cache, &inv.vm).map_err(|e| CliError {
                message: format!("analysis soundness violation: {e}"),
                code: EXIT_INCOHERENT,
            })?;
        report.checked
    } else {
        0
    };
    let _ = writeln!(
        out,
        r#"{{"event":"analyze","supported":true,"sites":{},"always_hit":{},"never_hit":{},"undecided":{},"coverage_pct":{:.1},"checked_refs":{}}}"#,
        merged.len(),
        always,
        never,
        mixed,
        100.0 * cov.ref_fraction(),
        checked,
    );
    Ok(CmdOutput::ok(out))
}

fn cmd_trace(inv: &Invocation) -> Result<CmdOutput, CliError> {
    let compiled = compile(&inv.source, &inv.options)?;
    let mut sink = PackedTrace::new();
    run(&compiled.program, &mut sink, &inv.vm)?;
    let mut out = String::new();
    let mut shown = 0usize;
    for rec in sink.records() {
        if shown == inv.limit {
            break;
        }
        if let TraceRecord::Event(ev) = rec {
            let _ = writeln!(
                out,
                "{} {:#8x}  {}{}",
                if ev.is_write { "store" } else { "load " },
                ev.addr,
                ev.tag.flavour,
                if ev.tag.last_ref { " [last-ref]" } else { "" },
            );
            shown += 1;
        }
    }
    let events = sink.events() as usize;
    if events > inv.limit {
        let _ = writeln!(out, "... {} more references", events - inv.limit);
    }
    Ok(CmdOutput::ok(out))
}

/// One JSON line describing a coherence violation.
fn violation_json(v: &CoherenceViolation) -> String {
    format!(
        r#"{{"event":"violation","ref_index":{},"addr":{},"pc":{},"flavour":"{}","last_ref":{},"served_from":"{}","stale":{},"fresh":{}}}"#,
        v.ref_index, v.addr, v.pc, v.flavour, v.last_ref, v.served_from, v.stale, v.fresh
    )
}

fn cmd_check(inv: &Invocation) -> Result<CmdOutput, CliError> {
    let compiled = compile(&inv.source, &inv.options)?;
    let r = run_with_oracle(&compiled, inv.cache, &inv.vm)?;
    let mut out = String::new();
    if let Some(v) = &r.first {
        let _ = writeln!(out, "{}", violation_json(v));
    }
    let _ = writeln!(
        out,
        r#"{{"event":"check","mode":"{}","coherent":{},"refs":{},"violations":{},"bus_words":{},"steps":{}}}"#,
        inv.options.mode,
        r.is_coherent(),
        r.refs,
        r.violations,
        r.cache.bus_words(),
        r.outcome.steps,
    );
    Ok(CmdOutput {
        text: out,
        code: if r.is_coherent() {
            EXIT_OK
        } else {
            EXIT_INCOHERENT
        },
    })
}

fn cmd_faults(inv: &Invocation) -> Result<CmdOutput, CliError> {
    let compiled = compile(&inv.source, &inv.options)?;
    let cfg = CampaignConfig {
        kinds: if inv.kinds.is_empty() {
            CampaignConfig::default().kinds
        } else {
            inv.kinds.clone()
        },
        seed: inv.seed,
        cache: inv.cache,
        vm: inv.vm,
    };
    let campaign = run_campaign(&compiled, &cfg)?;
    if !campaign.baseline.is_coherent() {
        let mut text = String::new();
        if let Some(v) = &campaign.baseline.first {
            let _ = writeln!(text, "{}", violation_json(v));
        }
        let _ = writeln!(
            text,
            r#"{{"event":"campaign","error":"baseline incoherent","violations":{}}}"#,
            campaign.baseline.violations
        );
        return Ok(CmdOutput {
            text,
            code: EXIT_INCOHERENT,
        });
    }
    let mut out = String::new();
    for r in &campaign.reports {
        let site = match &r.site {
            Some(s) => format!(
                r#","func":"{}","instr":{},"original":"{}{}","mutated":"{}{}""#,
                s.func_name,
                s.instr,
                s.original.flavour,
                if s.original.last_ref { "+last" } else { "" },
                s.mutated.flavour,
                if s.mutated.last_ref { "+last" } else { "" },
            ),
            None => format!(r#","mutated_sites":{}"#, r.mutated_sites),
        };
        let _ = writeln!(
            out,
            r#"{{"event":"mutant","kind":"{}","class":"{}","violations":{},"bus_words":{}{}}}"#,
            r.kind, r.class, r.violations, r.bus_words, site
        );
    }
    let _ = writeln!(
        out,
        r#"{{"event":"campaign","seed":{},"mutants":{},"benign":{},"traffic_regressing":{},"coherence_breaking":{},"baseline_bus_words":{}}}"#,
        inv.seed,
        campaign.reports.len(),
        campaign.count(FaultClass::Benign),
        campaign.count(FaultClass::TrafficRegressing),
        campaign.count(FaultClass::CoherenceBreaking),
        campaign.baseline.cache.bus_words(),
    );
    Ok(CmdOutput::ok(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn write_temp(name: &str, contents: &str) -> String {
        let path = std::env::temp_dir().join(format!("ucmc_test_{name}.mini"));
        std::fs::write(&path, contents).unwrap();
        path.to_string_lossy().into_owned()
    }

    const HELLO: &str = "global g: int; fn main() { g = 6; print(g * 7); }";

    const KERNEL: &str = "global a: [int; 16]; global s: int; \
        fn main() { let i: int = 0; \
          while i < 16 { a[i] = i; i = i + 1; } \
          i = 0; while i < 16 { s = s + a[i]; i = i + 1; } print(s); }";

    #[test]
    fn run_command_prints_output_and_stats() {
        let path = write_temp("run", HELLO);
        let inv = parse_args(&args(&["run", &path])).unwrap();
        let out = execute(&inv).unwrap();
        assert_eq!(out.code, EXIT_OK);
        assert!(out.text.starts_with("42\n"));
        assert!(out.text.contains("data refs"));
        assert!(out.text.contains("cache:"));
    }

    #[test]
    fn compare_command_reports_reduction() {
        let path = write_temp(
            "compare",
            "global a: [int; 32]; global s: int; \
             fn main() { let i: int = 0; \
               while i < 32 { a[i] = i; i = i + 1; } \
               i = 0; while i < 32 { s = s + a[i]; i = i + 1; } print(s); }",
        );
        let inv = parse_args(&args(&["compare", &path, "--paper"])).unwrap();
        let out = execute(&inv).unwrap();
        assert!(out.text.contains("output: [496]"));
        assert!(out.text.contains("cache-ref reduction"));
    }

    #[test]
    fn ir_command_dumps_functions() {
        let path = write_temp("ir", HELLO);
        let inv = parse_args(&args(&["ir", &path])).unwrap();
        let out = execute(&inv).unwrap();
        assert!(out.text.contains("fn main()"));
        assert!(out.text.contains("global g0: g"));
    }

    #[test]
    fn classify_command_labels_references() {
        let path = write_temp("classify", HELLO);
        let inv = parse_args(&args(&["classify", &path])).unwrap();
        let out = execute(&inv).unwrap();
        assert!(out.text.contains("Unambiguous"));
        assert!(out.text.contains("-- 2 unambiguous / 0 ambiguous"));
    }

    #[test]
    fn analyze_command_reports_verdicts_and_coverage() {
        let path = write_temp("analyze", KERNEL);
        let inv = parse_args(&args(&["analyze", &path, "--paper", "--check"])).unwrap();
        assert!(inv.analyze.check && !inv.analyze.guided);
        let out = execute(&inv).unwrap();
        assert_eq!(out.code, EXIT_OK);
        assert!(out.text.contains("\"event\":\"analyze\""));
        assert!(out.text.contains("\"supported\":true"));
        assert!(out.text.contains("dynamic coverage"));
        // --check really ran: the checked-reference count is nonzero.
        assert!(!out.text.contains("\"checked_refs\":0"));
    }

    #[test]
    fn analyze_command_declines_recursion_cleanly() {
        let path = write_temp(
            "analyze_rec",
            "fn f(n: int) -> int { if n < 1 { return 0; } return f(n - 1) + n; } \
             fn main() { print(f(5)); }",
        );
        let inv = parse_args(&args(&["analyze", &path])).unwrap();
        let out = execute(&inv).unwrap();
        assert_eq!(out.code, EXIT_OK);
        assert!(out.text.contains("\"supported\":false"));
        assert!(out.text.contains("recursive"));
    }

    #[test]
    fn analyze_guided_reports_rewrites_on_a_tiny_cache() {
        let path = write_temp(
            "analyze_guided",
            "global a: [int; 4]; global b: [int; 4]; \
             fn main() { a[0] = 3; b[0] = 4; a[1] = a[0] + b[0]; print(a[1] * 2); }",
        );
        let inv = parse_args(&args(&[
            "analyze",
            &path,
            "--paper",
            "--guided",
            "--cache-words",
            "1",
            "--line-words",
            "1",
            "--ways",
            "1",
        ]))
        .unwrap();
        let out = execute(&inv).unwrap();
        assert_eq!(out.code, EXIT_OK);
        assert!(out.text.contains("\"event\":\"analyze-guided\""));
        assert!(
            !out.text
                .contains("\"rewritten_loads\":0,\"rewritten_stores\":0"),
            "a 1-word cache must yield rewrites:\n{}",
            out.text
        );
    }

    #[test]
    fn analyze_flags_are_command_scoped() {
        let path = write_temp("analyze_scope", HELLO);
        for bad in [
            args(&["run", &path, "--check"]),
            args(&["classify", &path, "--guided"]),
        ] {
            let e = parse_args(&bad).unwrap_err();
            assert_eq!(e.code, EXIT_USAGE, "{}", e.message);
        }
    }

    #[test]
    fn trace_command_respects_limit() {
        let path = write_temp(
            "trace",
            "global a: [int; 8]; fn main() { let i: int = 0; \
             while i < 8 { a[i] = i; i = i + 1; } print(a[7]); }",
        );
        let inv = parse_args(&args(&["trace", &path, "--limit", "3", "--paper"])).unwrap();
        let out = execute(&inv).unwrap();
        let shown = out
            .text
            .lines()
            .filter(|l| l.starts_with(&"load"[..4]) || l.starts_with("store"))
            .count();
        assert_eq!(shown, 3);
        assert!(out.text.contains("more references"));
    }

    #[test]
    fn flag_parsing_and_errors() {
        let path = write_temp("flags", HELLO);
        let inv = parse_args(&args(&[
            "run",
            &path,
            "--regs",
            "8",
            "--cache-words",
            "64",
            "--ways",
            "2",
        ]))
        .unwrap();
        assert_eq!(inv.options.num_regs, 8);
        assert_eq!(inv.cache.size_words, 64);
        assert_eq!(inv.cache.associativity, 2);

        for bad in [
            args(&["bogus", &path]),
            args(&["run"]),
            args(&["run", "/no/such/file.mini"]),
            args(&["run", &path, "--regs", "x"]),
            args(&["run", &path, "--cache-words", "100"]),
            args(&["faults", &path, "--misclassify", "150"]),
        ] {
            let e = parse_args(&bad).unwrap_err();
            assert_eq!(e.code, EXIT_USAGE, "{}", e.message);
        }
    }

    #[test]
    fn vm_limit_flags_are_plumbed() {
        let path = write_temp("vmflags", HELLO);
        let inv = parse_args(&args(&[
            "run",
            &path,
            "--max-steps",
            "1000",
            "--mem-words",
            "4096",
        ]))
        .unwrap();
        assert_eq!(inv.vm.max_steps, 1000);
        assert_eq!(inv.vm.mem_words, 4096);
        // Tight step budgets surface as runtime errors, not panics.
        let inv = parse_args(&args(&["run", &path, "--max-steps", "3"])).unwrap();
        let err = execute(&inv).unwrap_err();
        assert_eq!(err.code, EXIT_ERROR);
        assert!(err.message.contains("step"), "{}", err.message);
    }

    #[test]
    fn conventional_flag_switches_mode() {
        let path = write_temp("conv", HELLO);
        let inv = parse_args(&args(&["run", &path, "--conventional"])).unwrap();
        assert_eq!(inv.options.mode, ManagementMode::Conventional);
        let out = execute(&inv).unwrap();
        assert!(out.text.contains("0.0% bypassed"));
    }

    #[test]
    fn safe_flag_switches_mode() {
        let path = write_temp("safe", HELLO);
        for flag in ["--safe", "--degrade-ambiguous"] {
            let inv = parse_args(&args(&["check", &path, flag])).unwrap();
            assert_eq!(inv.options.mode, ManagementMode::Safe);
            let out = execute(&inv).unwrap();
            assert_eq!(out.code, EXIT_OK);
            assert!(out.text.contains(r#""mode":"safe""#));
            assert!(out.text.contains(r#""coherent":true"#));
        }
    }

    #[test]
    fn check_command_reports_coherence() {
        let path = write_temp("check", KERNEL);
        for mode_flags in [&[][..], &["--conventional"][..], &["--safe"][..]] {
            let mut a = vec!["check", path.as_str()];
            a.extend_from_slice(mode_flags);
            let inv = parse_args(&args(&a)).unwrap();
            let out = execute(&inv).unwrap();
            assert_eq!(out.code, EXIT_OK, "{mode_flags:?}: {}", out.text);
            assert!(out.text.contains(r#""event":"check""#));
            assert!(out.text.contains(r#""violations":0"#));
        }
    }

    #[test]
    fn faults_command_runs_a_campaign() {
        let path = write_temp("faults", KERNEL);
        let inv = parse_args(&args(&[
            "faults",
            &path,
            "--paper",
            "--seed",
            "1",
            "--flip-bypass",
        ]))
        .unwrap();
        let out = execute(&inv).unwrap();
        assert_eq!(out.code, EXIT_OK);
        assert!(out.text.contains(r#""event":"mutant""#));
        assert!(out.text.contains(r#""event":"campaign""#));
        assert!(out.text.contains(r#""kind":"flip-bypass""#));
        // The summary line reports all three classes.
        let summary = out.text.lines().last().unwrap();
        assert!(summary.contains(r#""coherence_breaking""#));
    }

    #[test]
    fn timing_command_prices_all_three_modes() {
        let path = write_temp("timing", KERNEL);
        let inv = parse_args(&args(&[
            "timing",
            &path,
            "--paper",
            "--wb-entries",
            "2",
            "--hit-cycles",
            "1",
            "--mem-cycles",
            "20",
        ]))
        .unwrap();
        assert_eq!(inv.timing.write_buffer_entries, 2);
        assert_eq!(inv.timing.mem_word_cycles, 20);
        let out = execute(&inv).unwrap();
        assert_eq!(out.code, EXIT_OK);
        assert!(out.text.contains("unified"), "{}", out.text);
        assert!(out.text.contains("conventional"));
        assert!(out.text.contains("safe"));
        assert!(out.text.contains("cycle reduction (unified)"));
        assert!(out.text.contains("mem 20c/word"));
    }

    #[test]
    fn timing_flags_reject_bad_values() {
        let path = write_temp("timing_bad", HELLO);
        let e = parse_args(&args(&["timing", &path, "--wb-entries", "x"])).unwrap_err();
        assert_eq!(e.code, EXIT_USAGE);
    }

    #[test]
    fn sweep_flag_parsing_and_errors() {
        let inv = parse_args(&args(&["sweep", "--quick", "--out", "/tmp/x.json"])).unwrap();
        assert!(inv.sweep.quick);
        assert_eq!(inv.sweep.out, "/tmp/x.json");
        assert!(!inv.sweep.timing);
        let inv = parse_args(&args(&["sweep", "--quick", "--timing"])).unwrap();
        assert!(inv.sweep.timing);
        assert!(!inv.sweep.no_stack_distance);
        let inv = parse_args(&args(&["sweep", "--quick", "--no-stack-distance"])).unwrap();
        assert!(inv.sweep.no_stack_distance);
        assert!(!inv.sweep.no_static_analysis);
        let inv = parse_args(&args(&["sweep", "--quick", "--no-static-analysis"])).unwrap();
        assert!(inv.sweep.no_static_analysis);
        let inv = parse_args(&args(&["sweep", "--seed", "42"])).unwrap();
        assert_eq!(inv.sweep.seed, Some(42));
        assert_eq!(inv.sweep.out, "BENCH_sweep.json");
        assert_eq!(inv.sweep.jobs, None);
        let inv = parse_args(&args(&["sweep", "--quick", "--jobs", "2"])).unwrap();
        assert_eq!(inv.sweep.jobs, Some(2));

        for bad in [
            args(&["sweep", "--bogus"]),
            args(&["sweep", "--out"]),
            args(&["sweep", "--seed", "x"]),
            args(&["sweep", "--jobs"]),
            args(&["sweep", "--jobs", "x"]),
            args(&["sweep", "--jobs", "0"]),
            args(&["sweep", "--quick", "--paper-sizes"]),
        ] {
            let e = parse_args(&bad).unwrap_err();
            assert_eq!(e.code, EXIT_USAGE, "{}", e.message);
        }
    }

    #[test]
    fn sweep_writes_a_validating_artifact() {
        let out = std::env::temp_dir().join("ucmc_test_sweep.json");
        let out = out.to_string_lossy().into_owned();
        let inv = parse_args(&args(&["sweep", "--quick", "--out", &out])).unwrap();
        let result = execute(&inv).unwrap();
        assert_eq!(result.code, EXIT_OK);
        assert!(result.text.contains(r#""event":"sweep""#));
        assert!(result.text.contains(r#""event":"sweep-timing""#));
        assert!(result.text.contains("workload")); // the table header

        // The artifact it wrote passes its own validator.
        let inv = parse_args(&args(&["sweep", "--validate", &out])).unwrap();
        let result = execute(&inv).unwrap();
        assert_eq!(result.code, EXIT_OK);
        assert!(result.text.contains(r#""event":"sweep-validate""#));
        assert!(result.text.contains(r#""timed":false"#));

        // An old-schema artifact is rejected with a runtime (not usage)
        // error that names the recovery path.
        std::fs::write(&out, "{\"schema_version\": 1}").unwrap();
        let err = execute(&inv).unwrap_err();
        assert_eq!(err.code, EXIT_ERROR);
        assert!(
            err.message.contains("unsupported schema_version 1"),
            "{}",
            err.message
        );

        // A missing artifact is a usage error.
        let inv = parse_args(&args(&["sweep", "--validate", "/no/such.json"])).unwrap();
        assert_eq!(execute(&inv).unwrap_err().code, EXIT_USAGE);
    }

    #[test]
    fn timed_sweep_writes_cycle_columns() {
        let out = std::env::temp_dir().join("ucmc_test_sweep_timed.json");
        let out = out.to_string_lossy().into_owned();
        let inv = parse_args(&args(&["sweep", "--quick", "--timing", "--out", &out])).unwrap();
        let result = execute(&inv).unwrap();
        assert_eq!(result.code, EXIT_OK);
        assert!(result.text.contains("cyc -%"), "{}", result.text);

        let artifact = std::fs::read_to_string(&out).unwrap();
        assert!(artifact.contains("\"timing_config\": {"));
        assert!(artifact.contains("\"total_cycles\":"));

        let inv = parse_args(&args(&["sweep", "--validate", &out])).unwrap();
        let result = execute(&inv).unwrap();
        assert_eq!(result.code, EXIT_OK);
        assert!(result.text.contains(r#""timed":true"#));
    }

    #[test]
    fn serve_family_flag_parsing_and_errors() {
        let inv = parse_args(&args(&["serve", "--socket", "/tmp/s.sock", "--jobs", "2"])).unwrap();
        assert_eq!(inv.serve.socket.as_deref(), Some("/tmp/s.sock"));
        assert_eq!(inv.serve.jobs, 2);
        assert_eq!(inv.serve.cache_bytes, None);
        assert_eq!(inv.serve.cache_dir, None);
        let inv = parse_args(&args(&[
            "serve",
            "--socket",
            "/tmp/s.sock",
            "--cache-dir",
            "/tmp/cells",
        ]))
        .unwrap();
        assert_eq!(inv.serve.cache_dir.as_deref(), Some("/tmp/cells"));
        let inv = parse_args(&args(&["submit", "--socket", "/s", "--no-static-analysis"])).unwrap();
        assert!(inv.serve.no_static_analysis);
        let inv = parse_args(&args(&["submit", "--socket", "/s", "--stats"])).unwrap();
        assert!(inv.serve.stats);

        let src = write_temp("submit_parse", HELLO);
        let inv = parse_args(&args(&[
            "submit",
            "--socket",
            "/tmp/s.sock",
            "--timed",
            "--seed",
            "9",
            "--source",
            &src,
        ]))
        .unwrap();
        assert!(inv.serve.timed);
        assert!(!inv.serve.full);
        assert_eq!(inv.serve.seed, Some(9));
        assert_eq!(inv.source, HELLO);
        // The workload name defaults to the source file's stem.
        assert_eq!(inv.serve.name.as_deref(), Some("ucmc_test_submit_parse"));
        let inv = parse_args(&args(&[
            "submit", "--socket", "/s", "--source", &src, "--name", "mine",
        ]))
        .unwrap();
        assert_eq!(inv.serve.name.as_deref(), Some("mine"));

        let inv = parse_args(&args(&[
            "loadgen",
            "--requests",
            "6",
            "--seed",
            "7",
            "--min-warm-speedup",
            "2.5",
        ]))
        .unwrap();
        assert_eq!(inv.serve.socket, None); // self-host
        assert_eq!(inv.serve.requests, 6);
        assert_eq!(inv.serve.min_warm_speedup, Some(2.5));

        for bad in [
            args(&["serve"]),                                             // missing --socket
            args(&["submit"]),                                            // missing --socket
            args(&["serve", "--socket"]),                                 // dangling value
            args(&["serve", "--socket", "/s", "--jobs", "0"]),            // zero threads
            args(&["serve", "--socket", "/s", "--full"]),                 // submit-only flag
            args(&["serve", "--socket", "/s", "--requests", "3"]),        // loadgen-only flag
            args(&["submit", "--socket", "/s", "--cache-bytes", "4096"]), // server-side flag
            args(&["submit", "--socket", "/s", "--name", "x"]),           // --name without --source
            args(&["loadgen", "--requests", "0"]),
            args(&["loadgen", "--min-warm-speedup", "-1"]),
            args(&["loadgen", "--min-warm-speedup", "x"]),
            args(&["loadgen", "--max-request-bytes", "4096"]), // serve-only flag
            args(&["serve", "--socket", "/s", "--bogus"]),
            args(&["submit", "--socket", "/s", "--shutdown", "--full"]), // no sweep flags
            args(&["loadgen", "--shutdown"]),                            // submit-only flag
            args(&["submit", "--socket", "/s", "--cache-dir", "/d"]),    // serve-only flag
            args(&["submit", "--socket", "/s", "--stats", "--full"]),    // no sweep flags
            args(&["submit", "--socket", "/s", "--shutdown", "--stats"]), // pick one
        ] {
            let e = parse_args(&bad).unwrap_err();
            assert_eq!(e.code, EXIT_USAGE, "{}", e.message);
        }
    }

    /// Waits for a serving socket to come up (the server thread binds
    /// before `execute` returns control, but the test races it).
    fn wait_for_server(socket: &str) -> ucm_serve::client::Client {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            if let Ok(client) = ucm_serve::client::Client::connect(std::path::Path::new(socket)) {
                return client;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "server on `{socket}` never came up"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    }

    #[test]
    fn serve_and_submit_round_trip_matches_one_shot_sweep() {
        let socket =
            std::env::temp_dir().join(format!("ucmc_test_serve_{}.sock", std::process::id()));
        let socket = socket.to_string_lossy().into_owned();

        // One-shot reference artifact.
        let reference = std::env::temp_dir().join("ucmc_test_serve_ref.json");
        let reference = reference.to_string_lossy().into_owned();
        let inv = parse_args(&args(&["sweep", "--quick", "--out", &reference])).unwrap();
        execute(&inv).unwrap();
        let want = std::fs::read_to_string(&reference).unwrap();

        let serve_inv = parse_args(&args(&["serve", "--socket", &socket, "--jobs", "2"])).unwrap();
        let server = std::thread::spawn(move || execute(&serve_inv));
        let mut probe = wait_for_server(&socket);

        // Cold submit writes the byte-identical artifact to --out.
        let out = std::env::temp_dir().join("ucmc_test_serve_submit.json");
        let out = out.to_string_lossy().into_owned();
        let inv = parse_args(&args(&["submit", "--socket", &socket, "--out", &out])).unwrap();
        let result = execute(&inv).unwrap();
        assert_eq!(result.code, EXIT_OK);
        assert!(
            result.text.contains(r#""event":"submit""#),
            "{}",
            result.text
        );
        assert!(result.text.contains(r#""cold":true"#), "{}", result.text);
        assert_eq!(std::fs::read_to_string(&out).unwrap(), want);

        // Warm repeat without --out streams the artifact itself to stdout.
        let inv = parse_args(&args(&["submit", "--socket", &socket])).unwrap();
        let result = execute(&inv).unwrap();
        assert_eq!(result.text, want);

        // A custom source sweeps too (and reports via the event line).
        let src = write_temp("submit_custom", KERNEL);
        let inv = parse_args(&args(&[
            "submit", "--socket", &socket, "--source", &src, "--name", "kern", "--out", &out,
        ]))
        .unwrap();
        let result = execute(&inv).unwrap();
        assert_eq!(result.code, EXIT_OK);
        assert!(std::fs::read_to_string(&out).unwrap().contains("\"kern\""));

        // `submit --shutdown` reaps the server; a submit against the now
        // dead socket is a runtime error, not a panic.
        probe.ping().unwrap();
        drop(probe);
        let inv = parse_args(&args(&["submit", "--socket", &socket, "--shutdown"])).unwrap();
        let result = execute(&inv).unwrap();
        assert!(result.text.contains("submit-shutdown"), "{}", result.text);
        let served = server.join().unwrap().unwrap();
        assert_eq!(served.code, EXIT_OK);
        assert!(served.text.contains("serve-done"), "{}", served.text);
        let inv = parse_args(&args(&["submit", "--socket", &socket])).unwrap();
        assert_eq!(execute(&inv).unwrap_err().code, EXIT_ERROR);
    }

    #[test]
    fn loadgen_self_hosts_and_gates_on_warm_speedup() {
        let out = std::env::temp_dir().join("ucmc_test_loadgen.json");
        let out = out.to_string_lossy().into_owned();
        let inv = parse_args(&args(&[
            "loadgen",
            "--requests",
            "6",
            "--seed",
            "7",
            "--jobs",
            "2",
            "--out",
            &out,
            "--min-warm-speedup",
            "2",
        ]))
        .unwrap();
        let result = execute(&inv).unwrap();
        assert_eq!(result.code, EXIT_OK);
        assert!(
            result.text.contains(r#""event":"loadgen""#),
            "{}",
            result.text
        );
        assert!(result.text.contains(r#""event":"loadgen-latency""#));
        let report = std::fs::read_to_string(&out).unwrap();
        ucm_serve::loadgen::validate_serve_json(&report).unwrap();

        // An impossible gate turns into a runtime failure that still
        // carries the measured numbers.
        let inv = parse_args(&args(&[
            "loadgen",
            "--requests",
            "4",
            "--seed",
            "7",
            "--out",
            &out,
            "--min-warm-speedup",
            "1000000",
        ]))
        .unwrap();
        let e = execute(&inv).unwrap_err();
        assert_eq!(e.code, EXIT_ERROR);
        assert!(e.message.contains("warm speedup"), "{}", e.message);
    }

    // The obs collector is process-global; tests that install it must not
    // overlap each other (concurrent compiles from unrelated tests merely
    // add records, which the "contains" assertions tolerate).
    static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn obs_out_captures_a_stream_and_report_summarises_it() {
        let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let src = write_temp("obs_run", KERNEL);
        let obs = std::env::temp_dir().join("ucmc_test_obs_run.jsonl");
        let obs = obs.to_string_lossy().into_owned();
        // --obs-out is global: here it sits between the command's own flags.
        let inv = parse_args(&args(&["run", &src, "--obs-out", &obs, "--paper"])).unwrap();
        assert_eq!(inv.obs_out.as_deref(), Some(obs.as_str()));
        assert!(!inv.options.promote_scalars);
        let out = execute(&inv).unwrap();
        assert_eq!(out.code, EXIT_OK);

        let stream = std::fs::read_to_string(&obs).unwrap();
        let first = stream.lines().next().unwrap();
        assert!(first.contains(r#""type":"meta""#), "{first}");
        assert!(first.contains(r#""schema_version":1"#));
        for name in [
            "compile.parse",
            "compile.lower",
            "compile.alias_liveness",
            "compile.regalloc",
            "compile.codegen",
            "vm.steps",
            "vm.data_refs",
        ] {
            assert!(
                stream.contains(&format!(r#""name":"{name}""#)),
                "missing {name} in stream"
            );
        }

        let inv = parse_args(&args(&["report", &obs])).unwrap();
        let out = execute(&inv).unwrap();
        assert_eq!(out.code, EXIT_OK);
        assert!(out.text.contains("compile.parse"), "{}", out.text);
        assert!(out.text.contains("vm.steps"));
        assert!(out.text.contains(r#""event":"report""#));
        assert!(out.text.contains(r#""dropped":0"#));
    }

    #[test]
    fn sweep_obs_stream_reproduces_phase_timings() {
        let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let out_json = std::env::temp_dir().join("ucmc_test_sweep_obs.json");
        let out_json = out_json.to_string_lossy().into_owned();
        let obs = std::env::temp_dir().join("ucmc_test_sweep_obs.jsonl");
        let obs = obs.to_string_lossy().into_owned();
        let inv = parse_args(&args(&[
            "sweep",
            "--quick",
            "--out",
            &out_json,
            "--obs-out",
            &obs,
        ]))
        .unwrap();
        let result = execute(&inv).unwrap();
        assert_eq!(result.code, EXIT_OK);
        let timing = |text: &str| {
            let line = text
                .lines()
                .find(|l| l.contains(r#""event":"sweep-timing""#))
                .expect("no sweep-timing line");
            let v = ucm_bench::json::parse(line).unwrap();
            (
                v.get("record_s").unwrap().as_num().unwrap(),
                v.get("replay_s").unwrap().as_num().unwrap(),
            )
        };
        let (record, replay) = timing(&result.text);

        let inv = parse_args(&args(&["report", &obs])).unwrap();
        let report = execute(&inv).unwrap();
        assert_eq!(report.code, EXIT_OK);
        assert!(report.text.contains("sweep.record"), "{}", report.text);
        assert!(report.text.contains("sweep.replay"));
        assert!(report.text.contains("sweep.record.job"));
        assert!(report.text.contains("worker"));
        assert!(report.text.contains(r#""event":"report""#));
        // The report's sweep-timing line carries the same measured phase
        // durations the sweep printed (span timestamps are truncated to
        // microseconds, hence the 2 ms tolerance on a {:.3} rendering).
        let (r2, p2) = timing(&report.text);
        assert!((record - r2).abs() < 0.002, "record {record} vs {r2}");
        assert!((replay - p2).abs() < 0.002, "replay {replay} vs {p2}");
    }

    #[test]
    fn report_rejects_malformed_streams() {
        let dir = std::env::temp_dir();
        let meta =
            r#"{"schema_version":1,"type":"meta","generator":"ucm-obs","records":0,"dropped":0}"#;
        let cases: &[(&str, &str, &str)] = &[
            ("empty", "", "missing meta line"),
            (
                "bad_version",
                r#"{"schema_version":2,"type":"meta","records":0,"dropped":0}"#,
                "unsupported schema_version",
            ),
            (
                "span_first",
                r#"{"schema_version":1,"type":"span","seq":0,"worker":0,"name":"x","t_us":0,"dur_us":1}"#,
                "missing meta line",
            ),
            (
                "unknown_type",
                &format!(
                    "{meta}\n{}",
                    r#"{"schema_version":1,"type":"bogus","name":"x"}"#
                ),
                "unknown record type",
            ),
            (
                "count_mismatch",
                &format!(
                    "{}\n{}",
                    r#"{"schema_version":1,"type":"meta","records":2,"dropped":0}"#,
                    r#"{"schema_version":1,"type":"counter","seq":0,"worker":0,"name":"x","value":1}"#
                ),
                "claims 2 records",
            ),
            (
                "not_json",
                "not json at all",
                "invalid observability stream",
            ),
        ];
        for (name, contents, want) in cases {
            let path = dir.join(format!("ucmc_test_report_{name}.jsonl"));
            std::fs::write(&path, contents).unwrap();
            let path = path.to_string_lossy().into_owned();
            let inv = parse_args(&args(&["report", &path])).unwrap();
            let err = execute(&inv).unwrap_err();
            assert_eq!(err.code, EXIT_ERROR, "{name}");
            assert!(err.message.contains(want), "{name}: {}", err.message);
        }

        // A well-formed stream with every record type passes.
        let good = format!(
            "{}\n{}\n{}\n{}",
            r#"{"schema_version":1,"type":"meta","records":3,"dropped":0}"#,
            r#"{"schema_version":1,"type":"span","seq":0,"worker":0,"name":"a.job","t_us":5,"dur_us":1000}"#,
            r#"{"schema_version":1,"type":"counter","seq":1,"worker":0,"name":"c","value":7}"#,
            r#"{"schema_version":1,"type":"event","seq":2,"worker":0,"name":"e"}"#,
        );
        let path = dir.join("ucmc_test_report_good.jsonl");
        std::fs::write(&path, good).unwrap();
        let path = path.to_string_lossy().into_owned();
        let inv = parse_args(&args(&["report", &path])).unwrap();
        let out = execute(&inv).unwrap();
        assert!(out.text.contains("a.job"), "{}", out.text);
        assert!(out.text.contains(r#""spans":1,"counters":1,"events":1"#));
    }

    #[test]
    fn obs_flag_parse_errors() {
        for bad in [
            args(&["run", "x.mini", "--obs-out"]),
            args(&["report"]),
            args(&["report", "/no/such/stream.jsonl"]),
            args(&["report", "a.jsonl", "extra"]),
        ] {
            let e = parse_args(&bad).unwrap_err();
            assert_eq!(e.code, EXIT_USAGE, "{}", e.message);
        }
    }

    #[test]
    fn compile_errors_surface() {
        let path = write_temp("bad", "fn main() { print(undefined_var); }");
        let inv = parse_args(&args(&["run", &path])).unwrap();
        let err = execute(&inv).unwrap_err();
        assert_eq!(err.code, EXIT_ERROR);
        assert!(err.message.contains("unknown variable"));
    }

    // --- bad-input audit: every malformed-input shape is a usage error ---

    #[test]
    fn missing_file_is_a_usage_error() {
        let e = parse_args(&args(&["run", "/no/such/program.mini"])).unwrap_err();
        assert_eq!(e.code, EXIT_USAGE);
        assert!(e.message.contains("cannot read"), "{}", e.message);
    }

    #[test]
    fn non_utf8_source_is_a_usage_error() {
        let path = std::env::temp_dir().join("ucmc_test_non_utf8.mini");
        std::fs::write(&path, [0xff, 0xfe, 0x00, 0x80]).unwrap();
        let path = path.to_string_lossy().into_owned();
        for cmd in ["run", "check", "shrink"] {
            let e = parse_args(&args(&[cmd, &path])).unwrap_err();
            assert_eq!(e.code, EXIT_USAGE, "{cmd}: {}", e.message);
            assert!(e.message.contains("cannot read"), "{cmd}: {}", e.message);
        }
    }

    #[test]
    fn empty_program_is_a_usage_error() {
        for (name, contents) in [("empty", ""), ("blank", " \n\t\n")] {
            let path = write_temp(name, contents);
            let e = parse_args(&args(&["run", &path])).unwrap_err();
            assert_eq!(e.code, EXIT_USAGE, "{}", e.message);
            assert!(e.message.contains("is empty"), "{}", e.message);
        }
    }

    // --- fuzz / shrink ---

    #[test]
    fn fuzz_flag_parse_errors() {
        for bad in [
            args(&["fuzz", "--count", "0"]),
            args(&["fuzz", "--count"]),
            args(&["fuzz", "--emit", "x"]),
            args(&["fuzz", "--quick"]),
            args(&["fuzz", "--cache-words", "3"]),
            // shrink-only flags are rejected elsewhere
            args(&["run", "x.mini", "--inject"]),
            args(&["check", "x.mini", "--min-out", "y"]),
        ] {
            let e = parse_args(&bad).unwrap_err();
            assert_eq!(e.code, EXIT_USAGE, "{}", e.message);
        }
    }

    #[test]
    fn fuzz_emit_prints_a_deterministic_generated_program() {
        let inv = parse_args(&args(&["fuzz", "--emit", "42"])).unwrap();
        let a = execute(&inv).unwrap();
        let b = execute(&inv).unwrap();
        assert_eq!(a.code, EXIT_OK);
        assert_eq!(a.text, b.text);
        assert!(a.text.contains("fn main()"), "{}", a.text);
        // The emitted program is a valid input for the file commands.
        let path = write_temp("emit42", &a.text);
        let run = execute(&parse_args(&args(&["run", &path])).unwrap()).unwrap();
        assert_eq!(run.code, EXIT_OK);
    }

    #[test]
    fn fuzz_batch_reports_zero_failures_on_healthy_compiler() {
        let inv = parse_args(&args(&["fuzz", "--seed", "7", "--count", "10"])).unwrap();
        let out = execute(&inv).unwrap();
        assert_eq!(out.code, EXIT_OK, "{}", out.text);
        let summary = out.text.lines().last().unwrap();
        assert!(summary.contains(r#""event":"fuzz""#), "{summary}");
        assert!(summary.contains(r#""seed":7"#), "{summary}");
        assert!(summary.contains(r#""count":10"#), "{summary}");
        assert!(summary.contains(r#""failures":0"#), "{summary}");
    }

    #[test]
    fn shrink_refuses_a_passing_program_without_inject() {
        let path = write_temp("shrink_pass", KERNEL);
        let inv = parse_args(&args(&["shrink", &path])).unwrap();
        let err = execute(&inv).unwrap_err();
        assert_eq!(err.code, EXIT_ERROR);
        assert!(err.message.contains("passes the differential oracle"));
    }

    #[test]
    fn shrink_inject_minimizes_and_writes_min_out() {
        let min = std::env::temp_dir().join("ucmc_test_shrink_min.mini");
        let min = min.to_string_lossy().into_owned();
        let path = write_temp("shrink_inject", KERNEL);
        let inv = parse_args(&args(&["shrink", &path, "--inject", "--min-out", &min])).unwrap();
        let out = execute(&inv).unwrap();
        assert_eq!(out.code, EXIT_OK, "{}", out.text);
        assert!(out.text.contains(r#""event":"shrink""#), "{}", out.text);
        let minimized = std::fs::read_to_string(&min).unwrap();
        assert!(minimized.contains("fn main()"), "{minimized}");
        // The minimized reproducer is smaller and still a parseable program.
        assert!(minimized.len() < KERNEL.len());
        let reparsed = write_temp("shrink_min_roundtrip", &minimized);
        let run = parse_args(&args(&["ir", &reparsed])).unwrap();
        assert_eq!(execute(&run).unwrap().code, EXIT_OK);
    }
}
