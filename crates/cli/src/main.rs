//! `ucmc` — see [`ucm_cli`] for the command reference and exit codes.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let inv = match ucm_cli::parse_args(&args) {
        Ok(inv) => inv,
        Err(e) => {
            eprintln!("ucmc: {e}");
            std::process::exit(e.code);
        }
    };
    match ucm_cli::execute(&inv) {
        Ok(out) => {
            print!("{}", out.text);
            std::process::exit(out.code);
        }
        Err(e) => {
            eprintln!("ucmc: {e}");
            std::process::exit(e.code);
        }
    }
}
