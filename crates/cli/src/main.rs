//! `ucmc` — see [`ucm_cli`] for the command reference.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let inv = match ucm_cli::parse_args(&args) {
        Ok(inv) => inv,
        Err(e) => {
            eprintln!("ucmc: {e}");
            std::process::exit(2);
        }
    };
    match ucm_cli::execute(&inv) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("ucmc: {e}");
            std::process::exit(1);
        }
    }
}
