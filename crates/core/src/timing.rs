//! Cycle-level evaluation: run compiled programs against the timed cache
//! and compare total cycles / CPI across the three management modes.
//!
//! [`evaluate`](crate::evaluate) answers the paper's traffic questions
//! (references kept out of the cache, bus words saved); this module prices
//! the same executions in cycles with the `ucm-timing` model — write
//! buffer, bus contention, in-order core — so bypass decisions are judged
//! by what they cost end to end, not just by the words they move.

use crate::evaluate::EvalError;
use crate::mode::ManagementMode;
use crate::pipeline::{compile, Compiled, CompilerOptions};
use ucm_cache::{CacheConfig, CacheStats, TimedCache, TimingConfig, TimingReport};
use ucm_machine::{run, VmConfig, VmError, VmOutcome};

/// One program execution priced in cycles.
#[derive(Debug, Clone)]
pub struct TimedRun {
    /// VM outcome (program output, step count).
    pub outcome: VmOutcome,
    /// Cache traffic counters.
    pub cache: CacheStats,
    /// Cycle accounting from the timing simulator.
    pub report: TimingReport,
}

/// Runs `compiled` with every data reference classified by a cache of
/// `cache_cfg` and priced by a timing simulator of `timing`.
///
/// # Errors
///
/// Propagates VM traps (divide by zero, bounds, step limit).
pub fn run_with_timing(
    compiled: &Compiled,
    cache_cfg: CacheConfig,
    timing: TimingConfig,
    vm_cfg: &VmConfig,
) -> Result<TimedRun, VmError> {
    let mut sink = TimedCache::new(cache_cfg, timing);
    let outcome = run(&compiled.program, &mut sink, vm_cfg)?;
    let (cache, report) = sink.finish(outcome.steps);
    Ok(TimedRun {
        outcome,
        cache,
        report,
    })
}

/// Cycle comparison of the three management modes on one program, all
/// against the same cache geometry and timing model.
#[derive(Debug, Clone)]
pub struct TimingComparison {
    /// Program label.
    pub name: String,
    /// The unified build (bypass + last-reference tags honoured).
    pub unified: TimedRun,
    /// The conventional build (tags ignored, plain cache).
    pub conventional: TimedRun,
    /// The safe build (conservative tags only).
    pub safe: TimedRun,
}

impl TimingComparison {
    /// The run for `mode`.
    pub fn run(&self, mode: ManagementMode) -> &TimedRun {
        match mode {
            ManagementMode::Unified => &self.unified,
            ManagementMode::Conventional => &self.conventional,
            ManagementMode::Safe => &self.safe,
        }
    }

    /// Percent of total cycles `mode` saves over the conventional build
    /// (negative when it costs cycles).
    pub fn cycle_reduction_pct(&self, mode: ManagementMode) -> f64 {
        let conv = self.conventional.report.total_cycles;
        let m = self.run(mode).report.total_cycles;
        if conv == 0 {
            0.0
        } else {
            100.0 * (1.0 - m as f64 / conv as f64)
        }
    }

    /// Conventional cycles divided by `mode` cycles (> 1 is a win).
    pub fn speedup(&self, mode: ManagementMode) -> f64 {
        let conv = self.conventional.report.total_cycles;
        let m = self.run(mode).report.total_cycles;
        if m == 0 {
            1.0
        } else {
            conv as f64 / m as f64
        }
    }
}

/// Compiles `src` in all three modes, runs each against `cache_cfg` +
/// `timing`, and cross-checks that program outputs agree.
///
/// The conventional build replays against
/// [`CacheConfig::conventional`] geometry, matching how the traffic
/// comparison and the sweep treat that mode.
///
/// # Errors
///
/// Returns an [`EvalError`] on compile failure, VM trap, or output
/// mismatch between any pair of builds.
pub fn compare_timing(
    name: &str,
    src: &str,
    base: &CompilerOptions,
    cache_cfg: CacheConfig,
    timing: TimingConfig,
    vm_cfg: &VmConfig,
) -> Result<TimingComparison, EvalError> {
    let mut runs = Vec::with_capacity(3);
    for mode in [
        ManagementMode::Unified,
        ManagementMode::Conventional,
        ManagementMode::Safe,
    ] {
        let compiled = compile(src, &CompilerOptions { mode, ..*base })?;
        let cell_cfg = if mode == ManagementMode::Conventional {
            cache_cfg.conventional()
        } else {
            cache_cfg
        };
        runs.push(run_with_timing(&compiled, cell_cfg, timing, vm_cfg)?);
    }
    let safe = runs.pop().expect("three runs");
    let conventional = runs.pop().expect("three runs");
    let unified = runs.pop().expect("three runs");
    if unified.outcome.output != conventional.outcome.output
        || unified.outcome.output != safe.outcome.output
    {
        return Err(EvalError::OutputMismatch { name: name.into() });
    }
    Ok(TimingComparison {
        name: name.into(),
        unified,
        conventional,
        safe,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucm_cache::Latency;

    const ARRAY_WALK: &str = "global a: [int; 64]; global sum: int; \
        fn main() { let i: int = 0; let pass: int = 0; \
          while pass < 4 { i = 0; \
            while i < 64 { a[i] = a[i] + pass; i = i + 1; } pass = pass + 1; } \
          i = 0; while i < 64 { sum = sum + a[i]; i = i + 1; } print(sum); }";

    fn compare_default() -> TimingComparison {
        compare_timing(
            "walk",
            ARRAY_WALK,
            &CompilerOptions::default(),
            CacheConfig::default(),
            TimingConfig::default(),
            &VmConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn timing_runs_agree_with_traffic_runs() {
        let c = compare_default();
        // Same binary, same cache: the traffic counters must match what
        // run_with_cache would report, and cycles must be self-consistent.
        for mode in [
            ManagementMode::Unified,
            ManagementMode::Conventional,
            ManagementMode::Safe,
        ] {
            let r = c.run(mode);
            assert_eq!(r.report.refs, r.cache.total_refs());
            assert_eq!(r.report.steps, r.outcome.steps);
            assert!(r.report.total_cycles >= r.outcome.steps);
            assert!(r.report.cpi() >= 1.0);
            assert_eq!(r.report.pending_writes, 0);
        }
    }

    #[test]
    fn degenerate_timing_reproduces_access_time_plus_base() {
        // With no write buffer and no issue cost, total cycles equal the
        // closed-form access time of the traffic counters.
        let lat = Latency::default();
        let compiled = compile(ARRAY_WALK, &CompilerOptions::default()).unwrap();
        let r = run_with_timing(
            &compiled,
            CacheConfig::default(),
            TimingConfig::degenerate(lat.cache, lat.memory),
            &VmConfig::default(),
        )
        .unwrap();
        assert_eq!(r.report.total_cycles, r.cache.access_time(lat));
    }

    #[test]
    fn all_three_modes_produce_the_same_output() {
        let c = compare_default();
        assert_eq!(c.unified.outcome.output, c.conventional.outcome.output);
        assert_eq!(c.unified.outcome.output, c.safe.outcome.output);
    }

    #[test]
    fn cycle_reduction_is_consistent_with_speedup() {
        let c = compare_default();
        for mode in [ManagementMode::Unified, ManagementMode::Safe] {
            let red = c.cycle_reduction_pct(mode);
            let spd = c.speedup(mode);
            if red > 0.0 {
                assert!(spd > 1.0);
            } else {
                assert!(spd <= 1.0 + 1e-12);
            }
        }
        assert_eq!(c.cycle_reduction_pct(ManagementMode::Conventional), 0.0);
    }
}
