//! Deterministic annotation fault injection.
//!
//! The unified model's safety rests entirely on the compiler's annotations:
//! a wrong bypass bit lets a store slip past a cached copy, a forged
//! last-reference bit discards a live dirty line. This module perturbs the
//! *compiled* tags — after classification, liveness, and codegen have all
//! run — and measures what a trusting memory system does with the lie.
//!
//! Each single-site mutant flips exactly one [`MemTag`]; the whole-program
//! [`FaultKind::Misclassify`] mutant flips a seeded percentage of sites at
//! once. Every mutant executes under the [`crate::check`] coherence oracle
//! and is classified:
//!
//! * [`FaultClass::CoherenceBreaking`] — the oracle saw at least one
//!   cache-served load diverge from architectural memory;
//! * [`FaultClass::TrafficRegressing`] — values stayed correct but the
//!   mutant moved more memory-bus words than the unmutated baseline;
//! * [`FaultClass::Benign`] — indistinguishable from the baseline on both
//!   counts.
//!
//! Because the VM executes against flat architectural memory (tags only
//! steer the modelled cache), a tag fault can never change program output
//! or trap the VM — divergence is visible *only* through the oracle, which
//! is exactly why the oracle exists.

use crate::check::{run_program_with_oracle, CoherenceReport};
use crate::pipeline::Compiled;
use std::fmt;
use ucm_cache::{CacheConfig, CoherenceViolation};
use ucm_machine::{Flavour, MInstr, MachineProgram, MemTag, VmConfig, VmError};

/// Which perturbation a mutant applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip the §4.4 bypass bit: `Am_LOAD ↔ UmAm_LOAD`,
    /// `AmSp_STORE ↔ UmAm_STORE`. `Plain` sites are skipped (they carry no
    /// compiler intent to corrupt).
    FlipBypass,
    /// Clear a set last-reference bit. Losing a discard hint costs traffic
    /// at most — it must never cost correctness.
    DropLastRef,
    /// Set the last-reference bit on a reference the compiler did not prove
    /// last. The cache will discard the line — dirty data and all.
    ForgeLastRef,
    /// Swap the direction half of the flavour while keeping the bypass
    /// category: `Am_LOAD ↔ AmSp_STORE`, `UmAm_LOAD ↔ UmAm_STORE`. Models a
    /// compiler emitting the wrong opcode variant.
    SwapFlavour,
    /// One whole-program mutant: misclassify the given percentage of tagged
    /// sites (seeded selection), toggling each between ambiguous and
    /// unambiguous.
    Misclassify(u8),
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::FlipBypass => write!(f, "flip-bypass"),
            FaultKind::DropLastRef => write!(f, "drop-last-ref"),
            FaultKind::ForgeLastRef => write!(f, "forge-last-ref"),
            FaultKind::SwapFlavour => write!(f, "swap-flavour"),
            FaultKind::Misclassify(pct) => write!(f, "misclassify-{pct}pct"),
        }
    }
}

/// How a mutant behaved under the oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Indistinguishable from the baseline (values and bus words).
    Benign,
    /// Correct values, but more memory-bus words than the baseline.
    TrafficRegressing,
    /// At least one cache-served load returned a stale value.
    CoherenceBreaking,
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultClass::Benign => write!(f, "benign"),
            FaultClass::TrafficRegressing => write!(f, "traffic-regressing"),
            FaultClass::CoherenceBreaking => write!(f, "coherence-breaking"),
        }
    }
}

/// One tagged instruction that a mutant perturbed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSite {
    /// Function index in the program.
    pub func: usize,
    /// Function name.
    pub func_name: String,
    /// Instruction index within the function.
    pub instr: usize,
    /// The compiler's tag.
    pub original: MemTag,
    /// The perturbed tag the mutant ran with.
    pub mutated: MemTag,
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}{} -> {}{}",
            self.func_name,
            self.instr,
            self.original.flavour,
            if self.original.last_ref { "+last" } else { "" },
            self.mutated.flavour,
            if self.mutated.last_ref { "+last" } else { "" },
        )
    }
}

/// The verdict on one mutant.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// Which perturbation ran.
    pub kind: FaultKind,
    /// The single perturbed site, or `None` for whole-program mutants.
    pub site: Option<FaultSite>,
    /// Number of tags the mutant changed (1 for single-site mutants).
    pub mutated_sites: usize,
    /// Classification against the baseline.
    pub class: FaultClass,
    /// Oracle violation count.
    pub violations: u64,
    /// First divergence, if any.
    pub first: Option<CoherenceViolation>,
    /// Memory-bus words the mutant moved.
    pub bus_words: u64,
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Which fault kinds to inject.
    pub kinds: Vec<FaultKind>,
    /// Seed for the `Misclassify` site selection.
    pub seed: u64,
    /// Cache geometry for baseline and mutants.
    pub cache: CacheConfig,
    /// VM limits for baseline and mutants.
    pub vm: VmConfig,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            kinds: vec![
                FaultKind::FlipBypass,
                FaultKind::DropLastRef,
                FaultKind::ForgeLastRef,
                FaultKind::SwapFlavour,
                FaultKind::Misclassify(25),
            ],
            seed: 1,
            cache: CacheConfig::default(),
            vm: VmConfig::default(),
        }
    }
}

/// Results of a full campaign over one program.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// The unmutated program's oracle run (must itself be coherent for the
    /// mutant classification to mean anything).
    pub baseline: CoherenceReport,
    /// One report per mutant, in deterministic enumeration order.
    pub reports: Vec<FaultReport>,
}

impl Campaign {
    /// Mutants classified as the given class.
    pub fn count(&self, class: FaultClass) -> usize {
        self.reports.iter().filter(|r| r.class == class).count()
    }

    /// Whether any mutant broke coherence.
    pub fn any_coherence_breaking(&self) -> bool {
        self.count(FaultClass::CoherenceBreaking) > 0
    }
}

/// `splitmix64` — the deterministic site-selection generator for
/// [`FaultKind::Misclassify`]. Self-contained so campaign results are
/// reproducible from the seed alone.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform-enough percentage draw in `0..100`.
    fn percent(&mut self) -> u8 {
        (self.next() % 100) as u8
    }
}

/// The tag carried by an instruction, if any. `Enter` tags its frame-save
/// stores; `Leave` tags its reload loads — both are real annotated traffic
/// and fair game for perturbation.
fn tag_of(instr: &MInstr) -> Option<MemTag> {
    match instr {
        MInstr::Load { tag, .. }
        | MInstr::Store { tag, .. }
        | MInstr::Enter { tag, .. }
        | MInstr::Leave { tag, .. } => Some(*tag),
        _ => None,
    }
}

fn tag_mut(instr: &mut MInstr) -> Option<&mut MemTag> {
    match instr {
        MInstr::Load { tag, .. }
        | MInstr::Store { tag, .. }
        | MInstr::Enter { tag, .. }
        | MInstr::Leave { tag, .. } => Some(tag),
        _ => None,
    }
}

/// Flip the bypass category, preserving direction.
fn flip_bypass(flavour: Flavour) -> Option<Flavour> {
    match flavour {
        Flavour::AmLoad => Some(Flavour::UmAmLoad),
        Flavour::UmAmLoad => Some(Flavour::AmLoad),
        Flavour::AmSpStore => Some(Flavour::UmAmStore),
        Flavour::UmAmStore => Some(Flavour::AmSpStore),
        Flavour::Plain => None,
    }
}

/// Swap the direction, preserving the bypass category.
fn swap_direction(flavour: Flavour) -> Option<Flavour> {
    match flavour {
        Flavour::AmLoad => Some(Flavour::AmSpStore),
        Flavour::AmSpStore => Some(Flavour::AmLoad),
        Flavour::UmAmLoad => Some(Flavour::UmAmStore),
        Flavour::UmAmStore => Some(Flavour::UmAmLoad),
        Flavour::Plain => None,
    }
}

/// The single-site mutation for `kind`, or `None` when the site is not
/// applicable (e.g. dropping a last-ref bit that is not set).
fn mutate(kind: FaultKind, tag: MemTag) -> Option<MemTag> {
    match kind {
        FaultKind::FlipBypass => flip_bypass(tag.flavour).map(|flavour| MemTag { flavour, ..tag }),
        FaultKind::DropLastRef => tag.last_ref.then_some(MemTag {
            last_ref: false,
            ..tag
        }),
        FaultKind::ForgeLastRef => {
            (!tag.last_ref && tag.flavour != Flavour::Plain).then_some(MemTag {
                last_ref: true,
                ..tag
            })
        }
        FaultKind::SwapFlavour => {
            swap_direction(tag.flavour).map(|flavour| MemTag { flavour, ..tag })
        }
        // Whole-program; handled by `misclassify_program`.
        FaultKind::Misclassify(_) => None,
    }
}

/// Every tagged instruction in the program, in deterministic order.
fn sites(program: &MachineProgram) -> Vec<(usize, usize, MemTag)> {
    let mut out = Vec::new();
    for (fi, func) in program.funcs.iter().enumerate() {
        for (ii, instr) in func.code.iter().enumerate() {
            if let Some(tag) = tag_of(instr) {
                out.push((fi, ii, tag));
            }
        }
    }
    out
}

/// Builds the whole-program misclassification mutant: each tagged site is
/// toggled between ambiguous and unambiguous with probability `pct`%.
/// Returns the mutant and how many sites changed.
fn misclassify_program(program: &MachineProgram, pct: u8, seed: u64) -> (MachineProgram, usize) {
    let mut mutant = program.clone();
    let mut rng = SplitMix64(seed);
    let mut changed = 0;
    for func in &mut mutant.funcs {
        for instr in &mut func.code {
            let Some(tag) = tag_mut(instr) else { continue };
            if tag.flavour == Flavour::Plain {
                continue;
            }
            if rng.percent() < pct {
                if let Some(flavour) = flip_bypass(tag.flavour) {
                    tag.flavour = flavour;
                    tag.unambiguous = !tag.unambiguous;
                    changed += 1;
                }
            }
        }
    }
    (mutant, changed)
}

/// Whole-program mutant for seeding *known-bad* reproducers: every load
/// becomes an ambiguous cached load ([`Flavour::AmLoad`], fills a line
/// on miss) and every store becomes an unambiguous bypass store
/// ([`Flavour::UmAmStore`], straight to memory with no defensive probe
/// of the cache), with all last-reference bits cleared. Returns how many
/// sites changed.
///
/// The combination desynchronises cache and memory on the first
/// load→store→reload of any word: the load caches the old value, the
/// store updates only memory, and the reload is served the stale line.
/// Under paper-style codegen even `i = i + 1; print(i);` hits this, so
/// virtually any program breaks coherence. `ucm-fuzz` uses it as a
/// deterministic failure source for exercising and testing the shrinking
/// loop: the mutation is a pure function of the compiled program, so the
/// failure predicate survives arbitrary source-level shrinking as long
/// as a store→reload pair remains.
pub fn desync_stores(program: &mut MachineProgram) -> usize {
    let mut changed = 0;
    for func in &mut program.funcs {
        for instr in &mut func.code {
            match instr {
                MInstr::Load { tag, .. } => {
                    *tag = MemTag {
                        flavour: Flavour::AmLoad,
                        unambiguous: false,
                        last_ref: false,
                    };
                    changed += 1;
                }
                MInstr::Store { tag, .. } => {
                    *tag = MemTag {
                        flavour: Flavour::UmAmStore,
                        unambiguous: true,
                        last_ref: false,
                    };
                    changed += 1;
                }
                _ => {}
            }
        }
    }
    changed
}

/// Runs the full fault campaign on a compiled program.
///
/// # Errors
///
/// Propagates VM traps from the baseline or any mutant (tag faults cannot
/// trap the VM themselves, so a trap means the limits in
/// [`CampaignConfig::vm`] are too tight for the program).
pub fn run_campaign(compiled: &Compiled, cfg: &CampaignConfig) -> Result<Campaign, VmError> {
    let baseline = run_program_with_oracle(&compiled.program, cfg.cache, &cfg.vm)?;
    let baseline_bus = baseline.cache.bus_words();
    let classify = |report: &CoherenceReport| {
        if report.violations > 0 {
            FaultClass::CoherenceBreaking
        } else if report.cache.bus_words() > baseline_bus {
            FaultClass::TrafficRegressing
        } else {
            FaultClass::Benign
        }
    };
    let all_sites = sites(&compiled.program);
    let mut reports = Vec::new();
    for &kind in &cfg.kinds {
        if let FaultKind::Misclassify(pct) = kind {
            let (mutant, changed) = misclassify_program(&compiled.program, pct, cfg.seed);
            if changed == 0 {
                continue;
            }
            let r = run_program_with_oracle(&mutant, cfg.cache, &cfg.vm)?;
            reports.push(FaultReport {
                kind,
                site: None,
                mutated_sites: changed,
                class: classify(&r),
                violations: r.violations,
                first: r.first,
                bus_words: r.cache.bus_words(),
            });
            continue;
        }
        for &(fi, ii, original) in &all_sites {
            let Some(mutated) = mutate(kind, original) else {
                continue;
            };
            let mut mutant = compiled.program.clone();
            *tag_mut(&mut mutant.funcs[fi].code[ii]).expect("site carries a tag") = mutated;
            let r = run_program_with_oracle(&mutant, cfg.cache, &cfg.vm)?;
            reports.push(FaultReport {
                kind,
                site: Some(FaultSite {
                    func: fi,
                    func_name: compiled.program.funcs[fi].name.clone(),
                    instr: ii,
                    original,
                    mutated,
                }),
                mutated_sites: 1,
                class: classify(&r),
                violations: r.violations,
                first: r.first,
                bus_words: r.cache.bus_words(),
            });
        }
    }
    Ok(Campaign { baseline, reports })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::ManagementMode;
    use crate::pipeline::{compile, CompilerOptions};

    fn compiled(src: &str) -> Compiled {
        compile(
            src,
            &CompilerOptions {
                mode: ManagementMode::Unified,
                ..CompilerOptions::default()
            },
        )
        .unwrap()
    }

    const KERNEL: &str = "global a: [int; 16]; global sum: int; \
        fn main() { let i: int = 0; \
          while i < 16 { a[i] = i * 3; i = i + 1; } \
          i = 0; while i < 16 { sum = sum + a[i]; i = i + 1; } \
          print(sum); }";

    #[test]
    fn mutations_are_involutive_or_skipped() {
        for flavour in [
            Flavour::AmLoad,
            Flavour::AmSpStore,
            Flavour::UmAmLoad,
            Flavour::UmAmStore,
        ] {
            assert_eq!(flip_bypass(flip_bypass(flavour).unwrap()), Some(flavour));
            assert_eq!(
                swap_direction(swap_direction(flavour).unwrap()),
                Some(flavour)
            );
        }
        assert_eq!(flip_bypass(Flavour::Plain), None);
        assert_eq!(swap_direction(Flavour::Plain), None);
        let set = MemTag {
            flavour: Flavour::UmAmLoad,
            last_ref: true,
            unambiguous: true,
        };
        assert!(!mutate(FaultKind::DropLastRef, set).unwrap().last_ref);
        assert_eq!(mutate(FaultKind::ForgeLastRef, set), None);
    }

    #[test]
    fn misclassify_is_seed_deterministic() {
        let c = compiled(KERNEL);
        let (a, na) = misclassify_program(&c.program, 50, 7);
        let (b, nb) = misclassify_program(&c.program, 50, 7);
        assert_eq!(na, nb);
        assert_eq!(a, b);
        let (d, _) = misclassify_program(&c.program, 50, 8);
        assert_ne!(a, d, "different seeds should pick different sites");
    }

    #[test]
    fn campaign_baseline_is_coherent_and_classifies_every_mutant() {
        let c = compiled(KERNEL);
        let campaign = run_campaign(&c, &CampaignConfig::default()).unwrap();
        assert!(campaign.baseline.is_coherent());
        assert!(!campaign.reports.is_empty());
        let total = campaign.count(FaultClass::Benign)
            + campaign.count(FaultClass::TrafficRegressing)
            + campaign.count(FaultClass::CoherenceBreaking);
        assert_eq!(total, campaign.reports.len());
    }

    #[test]
    fn dropping_last_ref_bits_never_breaks_coherence() {
        let c = compiled(KERNEL);
        let campaign = run_campaign(
            &c,
            &CampaignConfig {
                kinds: vec![FaultKind::DropLastRef],
                ..CampaignConfig::default()
            },
        )
        .unwrap();
        assert!(!campaign.reports.is_empty(), "kernel has last-ref sites");
        for r in &campaign.reports {
            assert_ne!(
                r.class,
                FaultClass::CoherenceBreaking,
                "dropping a discard hint must be safe: {}",
                r.site.as_ref().unwrap()
            );
        }
    }
}
