//! Analysis-guided bypass: rewrite references the must/may cache
//! analysis proves can never hit.
//!
//! The paper's rule bypasses a reference iff the *classifier* proves it
//! unambiguous — an aliasing property. This pass extends the rule with
//! a *cache-behaviour* property the 1989 authors couldn't compute: an
//! ambiguous reference whose line is provably absent at every execution
//! ([`ucm_cache::classify`], verdict `hit == Never` in every call
//! context) gains nothing from the cache, so routing it straight to
//! memory saves the fill (and the fill's eviction) without touching
//! coherence — a never-hit line has no cached copy, so memory is
//! authoritative in both directions:
//!
//! * `Am_LOAD → UmAm_LOAD`: the miss path reads memory directly, no
//!   allocation;
//! * `AmSp_STORE → UmAm_STORE`: the write goes straight to memory, no
//!   write-allocate.
//!
//! The `last_ref`/`unambiguous` bits are preserved — only the flavour
//! (the bypass bit) changes.
//!
//! ## The fixpoint
//!
//! Removing one site's fill changes the abstract cache everywhere
//! downstream, in *both* directions: new never-hit sites can appear
//! (the fill no longer feeds later hits) and — more subtly — an
//! already-rewritten site can lose its proof (the fill no longer evicts
//! a line that now survives to hit there). So the rewrite iterates to a
//! fixpoint on the *set of rewritten sites*: each round classifies the
//! current program and recomputes, from scratch, the set of
//! originally-`Am` sites that are provably never-hit *now*. When the
//! set stops changing, the final classification — solved on exactly the
//! returned program — proves every applied rewrite.
//!
//! The grow phase can genuinely oscillate: rewriting a conflicting fill
//! away lets a line survive to hit at a site that was proven never-hit,
//! which un-proves the site, which restores the fill, which evicts the
//! line again... After [`MAX_GUIDED_ITERATIONS`] rounds the pass stops
//! chasing new proofs and switches to a *monotone shrink*: each round
//! only removes applied sites whose proof no longer holds, ignoring
//! growth candidates. Removal strictly shrinks the set, so this phase
//! terminates, and it stops exactly when every still-applied site is
//! proven `Never` on the program as rewritten — the correctness bar.
//! The report flags the fallback via `shrunk`.
//!
//! ## The discard-safety bar
//!
//! Proving the rewritten sites never hit is necessary but *not*
//! sufficient. The unified protocol discards cache lines without
//! write-back — a last-ref hit invalidates the line (§3.2), a last-ref
//! store hit drops the word with it, and an unambiguous load hit takes
//! and invalidates — and the compiler's liveness claims that make those
//! discards coherent were made against the *original* reference stream.
//! Removing a fill changes which executions hit at every other site, so
//! a discard-capable site can start hitting (and discarding dirty
//! words that are still live) where the original schedule had it miss.
//!
//! Mini programs are closed and deterministic, so the bar is enforced
//! the same way the rest of the repo judges coherence: once the proof
//! fixpoint converges, the candidate program is replayed under the
//! [`crate::check`] coherence oracle for the analyzed cache. A clean
//! run certifies the rewrite. A violation names the damaged address;
//! the applied sites sharing its cache set are banned (their restored
//! fills re-evict the offending line) and the fixpoint re-runs. If no
//! applied site can be blamed, the whole rewrite is abandoned
//! (`vetoed`) and the program returned unmodified.
//!
//! The bar is judged against the *original* program, replayed once
//! under the same oracle before any certification: the unified
//! protocol is itself not coherent on every geometry (a multi-word
//! line discarded by a last-reference invalidate takes co-resident
//! live dirty words with it — e.g. a helper frame's saved registers
//! sharing a line with a dead local), and no bypass choice can repair
//! damage the input program already does. When the baseline violates
//! at the analyzed cache, the geometry is outside the protocol's
//! coherent envelope and the pass vetoes immediately rather than
//! chasing culprits that do not exist.
//!
//! The proof is solved for **one** cache configuration
//! ([`GuidedBypassConfig::cache`]): like scheduling for a specific
//! microarchitecture, the emitted binary is specialised to that cache,
//! and only there do the never-hit guarantees (and so the coherence
//! argument) hold. Output equality still holds everywhere — flavours
//! steer traffic, not architectural state — but a foreign geometry may
//! see the rewritten sites hit, where take-and-invalidate can discard a
//! dirty line the way any wrong bypass bit would.

use std::collections::{BTreeSet, HashMap};

use ucm_analysis::cachedom::Tri;
use ucm_cache::classify::{ClassifyBase, Unsupported};
use ucm_cache::CacheConfig;
use ucm_machine::{Flavour, MInstr, MachineProgram, VmConfig};

/// Rounds of classify-and-rewrite before giving up on convergence.
pub const MAX_GUIDED_ITERATIONS: usize = 8;

/// What the guided rewrite is allowed to assume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuidedBypassConfig {
    /// The cache the never-hit proofs are solved for. Must be an
    /// honor-flags (unified) configuration — the proof machinery models
    /// the unified protocol.
    pub cache: CacheConfig,
    /// VM memory size the program will run under; frame addresses (and
    /// so the proofs) depend on it.
    pub mem_words: usize,
}

impl Default for GuidedBypassConfig {
    fn default() -> Self {
        GuidedBypassConfig {
            cache: CacheConfig::default(),
            mem_words: VmConfig::default().mem_words,
        }
    }
}

/// What [`apply_guided_bypass`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuidedReport {
    /// Classify-and-rewrite rounds run (≥ 1; the last round proves the
    /// returned program).
    pub iterations: usize,
    /// `Am_LOAD` sites rewritten to `UmAm_LOAD`.
    pub rewritten_loads: usize,
    /// `AmSp_STORE` sites rewritten to `UmAm_STORE`.
    pub rewritten_stores: usize,
    /// Whether the grow phase oscillated past [`MAX_GUIDED_ITERATIONS`]
    /// and the final set came from the monotone shrink fallback. The
    /// result is still fully proven — just not maximal.
    pub shrunk: bool,
    /// Whether the discard-safety bar abandoned the rewrite: the
    /// original program already violates at the analyzed cache, or a
    /// violation appeared with no attributable applied site. The
    /// program is returned unmodified (sound, just unoptimised).
    pub vetoed: bool,
}

impl GuidedReport {
    /// Total rewritten sites.
    pub fn rewritten(&self) -> usize {
        self.rewritten_loads + self.rewritten_stores
    }
}

/// Rewrites `program` in place, bypassing every originally-ambiguous
/// reference the analysis proves never hits under `cfg.cache`.
///
/// On success the final classification round was solved on exactly the
/// returned program and showed `hit == Never` in every context for
/// every rewritten site.
///
/// # Errors
///
/// [`Unsupported`] when the program or configuration is outside the
/// analysis model (recursion, context explosion, non-LRU policy, ...);
/// `program` is left unmodified.
pub fn apply_guided_bypass(
    program: &mut MachineProgram,
    cfg: &GuidedBypassConfig,
) -> Result<GuidedReport, Unsupported> {
    let _s = ucm_obs::span("compile.guided_bypass");
    let original = program.clone();
    let mut applied: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut banned: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut report = GuidedReport::default();
    let mut shrinking = false;
    let mut baseline_coherent: Option<bool> = None;
    let vm = VmConfig {
        mem_words: cfg.mem_words,
        ..VmConfig::default()
    };
    loop {
        report.iterations += 1;
        let class =
            match ClassifyBase::new(program, cfg.mem_words).and_then(|b| b.classify(&cfg.cache)) {
                Ok(c) => c,
                Err(e) => {
                    // Leave the caller's program untouched on any failure,
                    // including one surfacing mid-iteration.
                    *program = original;
                    return Err(e);
                }
            };
        // A site is provably never-hit when every context that reaches
        // it says `Never`; a site without verdicts is unreachable in
        // the supergraph and stays unproven.
        let mut never: HashMap<i64, bool> = HashMap::new();
        for (&(_, pc, _), v) in class.verdicts() {
            let e = never.entry(pc).or_insert(true);
            *e = *e && v.hit == Tri::Never;
        }
        // Eligibility is always judged on the ORIGINAL flavour, so the
        // set can both grow (new proofs) and shrink (a rewritten site
        // that lost its proof drops out and reverts). Banned sites —
        // blamed by a failed oracle certification — never re-enter.
        let mut next = BTreeSet::new();
        for (fi, f) in original.funcs.iter().enumerate() {
            for (pc, instr) in f.code.iter().enumerate() {
                if never.get(&(f.code_base + pc as i64)) != Some(&true)
                    || banned.contains(&(fi, pc))
                {
                    continue;
                }
                let eligible = match instr {
                    MInstr::Load { tag, .. } => tag.flavour == Flavour::AmLoad,
                    MInstr::Store { tag, .. } => tag.flavour == Flavour::AmSpStore,
                    _ => false,
                };
                if eligible {
                    next.insert((fi, pc));
                }
            }
        }
        let converged = if next == applied {
            true
        } else if shrinking {
            // Only drop applied sites whose proof failed; growth
            // candidates in `next ∖ applied` are deliberately ignored so
            // the set strictly shrinks and the loop must terminate. Every
            // surviving site was proven `Never` by the classification
            // just solved on the current (surviving-sites) program, so
            // stopping here meets the proof bar.
            let keep: BTreeSet<(usize, usize)> = applied.intersection(&next).copied().collect();
            if keep == applied {
                true
            } else {
                applied = keep;
                false
            }
        } else if report.iterations >= MAX_GUIDED_ITERATIONS {
            shrinking = true;
            report.shrunk = true;
            applied = applied.intersection(&next).copied().collect();
            false
        } else {
            applied = next;
            false
        };
        if !converged {
            *program = rewrite(&original, &applied);
            continue;
        }
        if applied.is_empty() {
            break;
        }
        // Proof fixpoint converged on a nonempty set: certify the
        // discard-safety bar by replaying under the coherence oracle.
        // The bar only means something if the unmodified program clears
        // it — on geometries where the protocol itself violates (line
        // discards dropping co-resident live words), veto outright.
        let base_coherent = *baseline_coherent.get_or_insert_with(|| {
            crate::check::run_program_with_oracle(&original, cfg.cache, &vm)
                .map(|r| r.violations == 0)
                .unwrap_or(false)
        });
        if !base_coherent {
            applied.clear();
            report.vetoed = true;
            *program = original.clone();
            break;
        }
        let certified = match crate::check::run_program_with_oracle(program, cfg.cache, &vm) {
            Ok(r) if r.violations == 0 => true,
            Ok(r) => {
                // Blame the applied sites whose line shares a cache set
                // with the damaged address — restoring their fills
                // re-evicts the line that hit where it should not have.
                // An applied site with an unresolved context is blamed
                // too: it may touch any set.
                let damaged_set = r.first.as_ref().map(|v| cache_set(&cfg.cache, v.addr));
                let culprits: BTreeSet<(usize, usize)> = applied
                    .iter()
                    .copied()
                    .filter(|&(fi, pc)| {
                        let gpc = original.funcs[fi].code_base + pc as i64;
                        class
                            .verdicts()
                            .iter()
                            .filter(|(&(_, vpc, _), _)| vpc == gpc)
                            .any(|(_, v)| match (v.resolved, damaged_set) {
                                (Some(a), Some(s)) => cache_set(&cfg.cache, a) == s,
                                _ => true,
                            })
                    })
                    .collect();
                if culprits.is_empty() {
                    applied.clear();
                    report.vetoed = true;
                    *program = original.clone();
                    break;
                }
                banned.extend(culprits.iter().copied());
                for c in &culprits {
                    applied.remove(c);
                }
                *program = rewrite(&original, &applied);
                false
            }
            Err(_) => {
                // A VM trap here is impossible in practice (flavours do
                // not steer architectural execution), but stay sound.
                applied.clear();
                report.vetoed = true;
                *program = original.clone();
                break;
            }
        };
        if certified {
            break;
        }
    }
    for &(fi, pc) in &applied {
        match &original.funcs[fi].code[pc] {
            MInstr::Load { .. } => report.rewritten_loads += 1,
            MInstr::Store { .. } => report.rewritten_stores += 1,
            _ => unreachable!("only loads and stores are ever applied"),
        }
    }
    ucm_obs::counter("guided.rewritten_sites", report.rewritten() as u64);
    Ok(report)
}

/// The cache set index `addr`'s line maps to under `config`.
fn cache_set(config: &CacheConfig, addr: i64) -> usize {
    let line_addr = (addr as u64) / config.line_words as u64;
    (line_addr % config.num_sets() as u64) as usize
}

/// The original program with the chosen sites' bypass bits set.
fn rewrite(original: &MachineProgram, sites: &BTreeSet<(usize, usize)>) -> MachineProgram {
    let mut p = original.clone();
    for &(fi, pc) in sites {
        match &mut p.funcs[fi].code[pc] {
            MInstr::Load { tag, .. } => tag.flavour = Flavour::UmAmLoad,
            MInstr::Store { tag, .. } => tag.flavour = Flavour::UmAmStore,
            other => unreachable!("site selection only picks loads/stores, got {other:?}"),
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{compile, CompilerOptions};
    use ucm_machine::{run, NullSink};

    fn flavour_histogram(p: &MachineProgram) -> HashMap<Flavour, usize> {
        let mut h = HashMap::new();
        for f in &p.funcs {
            for i in &f.code {
                if let MInstr::Load { tag, .. } | MInstr::Store { tag, .. } = i {
                    *h.entry(tag.flavour).or_insert(0) += 1;
                }
            }
        }
        h
    }

    /// Constant-index accesses to global arrays give the analysis
    /// resolvable addresses with *ambiguous* flavours (arrays are
    /// aliasable) — prime rewrite candidates when the cache is too
    /// small for them to ever hit.
    const SRC: &str = "global a: [int; 4]; global b: [int; 4];
        fn main() { a[0] = 3; b[0] = 4; a[1] = a[0] + b[0]; print(a[1] * 2); }";

    #[test]
    fn guided_bypass_rewrites_proven_sites_and_preserves_output() {
        let opts = CompilerOptions::paper();
        let c = compile(SRC, &opts).unwrap();
        let vm = VmConfig::default();
        let baseline = run(&c.program, &mut NullSink, &vm).unwrap();

        let mut guided = c.program.clone();
        // One-word direct-mapped cache: almost nothing can ever hit, so
        // the proofs are plentiful.
        let report = apply_guided_bypass(
            &mut guided,
            &GuidedBypassConfig {
                cache: CacheConfig {
                    size_words: 1,
                    line_words: 1,
                    associativity: 1,
                    ..CacheConfig::default()
                },
                mem_words: vm.mem_words,
            },
        )
        .unwrap();
        assert!(!report.shrunk);
        assert!(
            report.rewritten() > 0,
            "a 1-word cache must yield never-hit proofs: {report:?}"
        );

        // Flavours changed; architectural behaviour did not.
        assert_ne!(flavour_histogram(&c.program), flavour_histogram(&guided));
        let out = run(&guided, &mut NullSink, &vm).unwrap();
        assert_eq!(out.output, baseline.output);
        assert_eq!(out.steps, baseline.steps, "rewrite must not change code");
    }

    #[test]
    fn guided_bypass_under_a_big_cache_leaves_warm_hits_alone() {
        // With a default-size cache, repeated global reads hit — those
        // sites must NOT be rewritten; but the rewrite is still allowed
        // to claim provable never-hit sites (e.g. cold first touches
        // are `Sometimes`, not `Never`, so they stay too).
        let opts = CompilerOptions::paper();
        let c = compile(SRC, &opts).unwrap();
        let mut guided = c.program.clone();
        let report = apply_guided_bypass(&mut guided, &GuidedBypassConfig::default()).unwrap();
        assert!(!report.shrunk);
        // Every remaining Am site must still be ambiguous-flavoured in
        // the guided program unless it was proven; sanity-check via a
        // replay-equality: both programs still print the same value.
        let vm = VmConfig::default();
        assert_eq!(
            run(&guided, &mut NullSink, &vm).unwrap().output,
            run(&c.program, &mut NullSink, &vm).unwrap().output,
        );
    }

    #[test]
    fn guided_compile_is_coherent_and_cuts_fills_under_the_analyzed_cache() {
        // End-to-end through the pipeline option: the guided build must
        // (a) stay coherent under the oracle for the cache it was
        // specialised to, and (b) fill strictly fewer lines there —
        // that traffic cut is the whole point of the rewrite.
        let cache = CacheConfig {
            size_words: 1,
            line_words: 1,
            associativity: 1,
            ..CacheConfig::default()
        };
        let vm = VmConfig::default();
        let baseline = compile(SRC, &CompilerOptions::paper()).unwrap();
        let guided = compile(
            SRC,
            &CompilerOptions {
                guided_bypass: Some(GuidedBypassConfig {
                    cache,
                    mem_words: vm.mem_words,
                }),
                ..CompilerOptions::paper()
            },
        )
        .unwrap();
        let report = guided.guided.expect("guided option must yield a report");
        assert!(report.rewritten() > 0 && !report.shrunk);
        assert!(baseline.guided.is_none());

        let base = crate::check::run_with_oracle(&baseline, cache, &vm).unwrap();
        let opt = crate::check::run_with_oracle(&guided, cache, &vm).unwrap();
        assert_eq!(opt.violations, 0, "first: {:?}", opt.first);
        assert_eq!(opt.outcome.output, base.outcome.output);
        assert!(
            opt.cache.fills < base.cache.fills,
            "bypassing never-hit refs must cut fills: {} -> {}",
            base.cache.fills,
            opt.cache.fills
        );
    }

    #[test]
    fn incoherent_baseline_geometry_is_vetoed() {
        // On a 16-word cache with 8-word lines the unified protocol is
        // natively incoherent for call-bearing programs: the helper
        // frame's dead-local last-reference invalidate discards the
        // whole stack line, saved registers included, and the dirty
        // saved-fp word never reaches memory. The guided pass must
        // detect the dirty baseline and refuse to specialise rather
        // than hunt for culprits among its own rewrites.
        let src = "global a: [int; 8];
            fn seed(base: int) { a[0] = base; a[1] = base + 1; a[2] = base * 2; a[3] = base - 1; }
            fn main() { seed(3); print(a[0] + a[1] + a[2] + a[3]); }";
        let cache = CacheConfig {
            size_words: 16,
            line_words: 8,
            associativity: 1,
            ..CacheConfig::default()
        };
        let vm = VmConfig::default();
        let c = compile(src, &CompilerOptions::paper()).unwrap();
        let base = crate::check::run_with_oracle(&c, cache, &vm).unwrap();
        assert!(
            base.violations > 0,
            "this geometry must exhibit the native line-discard hazard"
        );

        let mut p = c.program.clone();
        let report = apply_guided_bypass(
            &mut p,
            &GuidedBypassConfig {
                cache,
                mem_words: vm.mem_words,
            },
        )
        .unwrap();
        assert!(report.vetoed, "dirty baseline must veto: {report:?}");
        assert_eq!(report.rewritten(), 0);
        assert_eq!(p, c.program, "a vetoed rewrite must not mutate");
    }

    #[test]
    fn unsupported_programs_are_left_untouched() {
        let src = "fn f(n: int) -> int { if n < 1 { return 0; } return f(n - 1) + n; }
                   fn main() { print(f(5)); }";
        let c = compile(src, &CompilerOptions::paper()).unwrap();
        let mut p = c.program.clone();
        let err = apply_guided_bypass(&mut p, &GuidedBypassConfig::default()).unwrap_err();
        assert_eq!(err, Unsupported::Recursion);
        assert_eq!(p, c.program, "failed rewrites must not mutate");
    }
}
