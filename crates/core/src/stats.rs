//! Static reference statistics over compiled machine code.
//!
//! The paper's Figure 5 reports both a *static* percentage (70–80% of the
//! load/store instructions in the binary are unambiguous) and a *dynamic*
//! one; this module provides the static side, counting every memory
//! instruction the code generator emitted — including prologue/epilogue
//! saves, caller saves, and argument traffic.

use ucm_machine::{Flavour, MInstr, MachineProgram};

/// Static (per-instruction) counts of memory references in a binary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StaticRefStats {
    /// Memory instructions classified unambiguous.
    pub unambiguous: usize,
    /// Memory instructions classified ambiguous.
    pub ambiguous: usize,
    /// Loads (including frame reloads).
    pub loads: usize,
    /// Stores (including frame saves).
    pub stores: usize,
    /// Per-flavour counts: plain, Am_LOAD, AmSp_STORE, UmAm_LOAD, UmAm_STORE.
    pub by_flavour: [usize; 5],
}

impl StaticRefStats {
    /// Total memory references.
    pub fn total(&self) -> usize {
        self.unambiguous + self.ambiguous
    }

    /// Static fraction of unambiguous references.
    pub fn unambiguous_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.unambiguous as f64 / self.total() as f64
        }
    }

    fn record(&mut self, flavour: Flavour, unambiguous: bool, is_store: bool, count: usize) {
        if unambiguous {
            self.unambiguous += count;
        } else {
            self.ambiguous += count;
        }
        if is_store {
            self.stores += count;
        } else {
            self.loads += count;
        }
        let idx = match flavour {
            Flavour::Plain => 0,
            Flavour::AmLoad => 1,
            Flavour::AmSpStore => 2,
            Flavour::UmAmLoad => 3,
            Flavour::UmAmStore => 4,
        };
        self.by_flavour[idx] += count;
    }
}

/// Counts the static memory references of `program`.
pub fn static_ref_stats(program: &MachineProgram) -> StaticRefStats {
    let mut s = StaticRefStats::default();
    for f in &program.funcs {
        for i in &f.code {
            match i {
                MInstr::Load { tag, .. } => s.record(tag.flavour, tag.unambiguous, false, 1),
                MInstr::Store { tag, .. } => s.record(tag.flavour, tag.unambiguous, true, 1),
                MInstr::Enter { save_ra, tag, .. } => s.record(
                    tag.flavour,
                    tag.unambiguous,
                    true,
                    1 + usize::from(*save_ra),
                ),
                MInstr::Leave { save_ra, tag, .. } => s.record(
                    tag.flavour,
                    tag.unambiguous,
                    false,
                    1 + usize::from(*save_ra),
                ),
                _ => {}
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::ManagementMode;
    use crate::pipeline::{compile, CompilerOptions};

    #[test]
    fn counts_split_by_class() {
        let c = compile(
            "global g: int; global a: [int; 8]; \
             fn main() { g = 1; a[g] = g; print(a[g]); }",
            &CompilerOptions::default(),
        )
        .unwrap();
        let s = static_ref_stats(&c.program);
        assert!(s.unambiguous > 0);
        assert!(s.ambiguous > 0);
        assert_eq!(s.total(), s.loads + s.stores);
        let frac = s.unambiguous_fraction();
        assert!(frac > 0.0 && frac < 1.0);
    }

    #[test]
    fn scalar_only_program_is_fully_unambiguous() {
        let c = compile(
            "global g: int; fn main() { g = 41; print(g + 1); }",
            &CompilerOptions::default(),
        )
        .unwrap();
        let s = static_ref_stats(&c.program);
        assert_eq!(s.ambiguous, 0);
        assert!((s.unambiguous_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conventional_mode_still_counts_classes() {
        let c = compile(
            "global g: int; global a: [int; 8]; \
             fn main() { g = 1; a[g] = g; print(a[g]); }",
            &CompilerOptions {
                mode: ManagementMode::Conventional,
                ..CompilerOptions::default()
            },
        )
        .unwrap();
        let s = static_ref_stats(&c.program);
        // Everything is Plain-flavoured...
        assert_eq!(s.by_flavour[0], s.total());
        // ...but the classification is still visible.
        assert!(s.unambiguous > 0 && s.ambiguous > 0);
    }

    #[test]
    fn enter_leave_counted_per_saved_word() {
        let c = compile(
            "fn leaf() { } fn main() { leaf(); }",
            &CompilerOptions::default(),
        )
        .unwrap();
        let s = static_ref_stats(&c.program);
        // main (non-leaf): Enter = 2 stores, Leave = 2 loads.
        // leaf: Enter = 1 store, Leave = 1 load.
        assert_eq!(s.stores, 3);
        assert_eq!(s.loads, 3);
        assert_eq!(s.ambiguous, 0);
    }
}
