//! The end-to-end compiler: Mini source → annotated machine code.

use crate::annotate::Annotations;
use crate::mode::ManagementMode;
use std::error::Error;
use std::fmt;
use ucm_ir::lower::{lower_with, LowerOptions};
use ucm_ir::{verify_module, LowerError, Module, VerifyError};
use ucm_lang::{parse_and_check, LangError};
use ucm_machine::codegen::{codegen, CodegenConfig, CodegenError, SynthTags};
use ucm_machine::MachineProgram;
use ucm_regalloc::{allocate, AllocError, Strategy};

/// Options for a compilation.
#[derive(Debug, Clone, Copy)]
pub struct CompilerOptions {
    /// Number of general-purpose registers (the paper's MIPS setting would
    /// be 32; the default of 16 models the register pressure of 1989-era
    /// compilers that reserve half the file).
    pub num_regs: usize,
    /// Register allocator.
    pub strategy: Strategy,
    /// Management mode (unified vs conventional baseline).
    pub mode: ManagementMode,
    /// Base address of the global segment.
    pub globals_base: i64,
    /// Whether loop-level promotion of unambiguous scalars runs before
    /// register allocation: values referenced in call-free, deref-free loops
    /// live in registers across the loop with `UmAm` boundary traffic only
    /// (see [`crate::promote::promote_loops`]).
    pub loop_promotion: bool,
    /// Whether block-local promotion of unambiguous scalars runs before
    /// register allocation (the "register allocation with cache bypass" of
    /// paper Figure 4; see [`crate::promote`]).
    pub local_promotion: bool,
    /// Whether unaliased scalars are promoted to registers at lowering.
    /// `true` gives modern codegen; `false` reproduces the unoptimizing
    /// late-1980s compilers the paper measured, whose stack traffic
    /// dominates the dynamic reference mix (see [`CompilerOptions::paper`]).
    pub promote_scalars: bool,
    /// Analysis-guided bypass: after codegen, rewrite ambiguous
    /// references the must/may cache analysis proves can never hit
    /// under the given cache (see [`crate::guided`]). `None` keeps the
    /// paper's alias-only bypass rule.
    pub guided_bypass: Option<crate::guided::GuidedBypassConfig>,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        CompilerOptions {
            num_regs: 16,
            strategy: Strategy::Coloring,
            mode: ManagementMode::Unified,
            globals_base: 0x1000,
            loop_promotion: true,
            local_promotion: true,
            promote_scalars: true,
            guided_bypass: None,
        }
    }
}

impl CompilerOptions {
    /// The configuration that models the paper's measurement setup
    /// (§5, MIPS binaries): scalars live in the frame and are loaded/stored
    /// per access, so the unambiguous share of dynamic references matches
    /// the 45–75% the paper reports.
    pub fn paper() -> Self {
        CompilerOptions {
            promote_scalars: false,
            loop_promotion: false,
            ..CompilerOptions::default()
        }
    }
}

/// Compilation failure from any stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Lexer/parser/checker error.
    Lang(LangError),
    /// AST → IR failure.
    Lower(LowerError),
    /// IR malformation (a compiler bug surfaced by the verifier).
    Verify(VerifyError),
    /// Register allocation could not converge.
    Alloc(AllocError),
    /// Machine-code generation rejected the allocated module (a compiler
    /// bug surfaced by codegen's pre-generation validation).
    Codegen(CodegenError),
    /// Analysis-guided bypass was requested but the program or cache
    /// configuration is outside the analysis model.
    Guided(ucm_cache::classify::Unsupported),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Lang(e) => write!(f, "{e}"),
            CompileError::Lower(e) => write!(f, "{e}"),
            CompileError::Verify(e) => write!(f, "{e}"),
            CompileError::Alloc(e) => write!(f, "{e}"),
            CompileError::Codegen(e) => write!(f, "{e}"),
            CompileError::Guided(e) => write!(f, "guided bypass: {e}"),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Lang(e) => Some(e),
            CompileError::Lower(e) => Some(e),
            CompileError::Verify(e) => Some(e),
            CompileError::Alloc(e) => Some(e),
            CompileError::Codegen(e) => Some(e),
            CompileError::Guided(e) => Some(e),
        }
    }
}

impl From<LangError> for CompileError {
    fn from(e: LangError) -> Self {
        CompileError::Lang(e)
    }
}

impl From<LowerError> for CompileError {
    fn from(e: LowerError) -> Self {
        CompileError::Lower(e)
    }
}

impl From<VerifyError> for CompileError {
    fn from(e: VerifyError) -> Self {
        CompileError::Verify(e)
    }
}

impl From<AllocError> for CompileError {
    fn from(e: AllocError) -> Self {
        CompileError::Alloc(e)
    }
}

impl From<CodegenError> for CompileError {
    fn from(e: CodegenError) -> Self {
        CompileError::Codegen(e)
    }
}

/// A fully compiled program plus the artifacts downstream passes inspect.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// Executable machine code.
    pub program: MachineProgram,
    /// Per-reference tags and the classification behind them.
    pub annotations: Annotations,
    /// The register-allocated IR module.
    pub module: Module,
    /// The options used.
    pub options: CompilerOptions,
    /// What the analysis-guided bypass rewrite did (`None` when it
    /// wasn't requested).
    pub guided: Option<crate::guided::GuidedReport>,
}

/// Compiles Mini source text.
///
/// # Errors
///
/// Returns the first error from any stage (front end, lowering, register
/// allocation).
pub fn compile(src: &str, options: &CompilerOptions) -> Result<Compiled, CompileError> {
    // Phase spans only wrap stage boundaries — when no collector is
    // installed each is one relaxed atomic load (see `ucm_obs`).
    let checked = {
        let _s = ucm_obs::span("compile.parse");
        parse_and_check(src)?
    };
    let module = {
        let _s = ucm_obs::span("compile.lower");
        let module = lower_with(
            &checked,
            &LowerOptions {
                promote_scalars: options.promote_scalars,
            },
        )?;
        verify_module(&module)?;
        module
    };
    compile_module(module, options)
}

/// Compiles an already-lowered module (programmatic IR construction).
///
/// # Errors
///
/// Returns an error if verification or register allocation fails.
pub fn compile_module(
    mut module: Module,
    options: &CompilerOptions,
) -> Result<Compiled, CompileError> {
    {
        let _s = ucm_obs::span("compile.promote");
        if options.loop_promotion {
            crate::promote::promote_loops(&mut module);
            verify_module(&module)?;
        }
        if options.local_promotion {
            crate::promote::promote_locals(&mut module);
            verify_module(&module)?;
        }
    }
    let mut allocated = Module {
        globals: module.globals.clone(),
        funcs: Vec::with_capacity(module.funcs.len()),
        main: module.main,
    };
    let mut assignments = Vec::with_capacity(module.funcs.len());
    {
        let _s = ucm_obs::span("compile.regalloc");
        for f in &module.funcs {
            let a = allocate(f.clone(), options.num_regs, options.strategy)?;
            allocated.funcs.push(a.func);
            assignments.push(a.assignment);
        }
        verify_module(&allocated)?;
    }
    let annotations = {
        let _s = ucm_obs::span("compile.alias_liveness");
        Annotations::compute(&allocated, options.mode)
    };
    let mut program = {
        let _s = ucm_obs::span("compile.codegen");
        codegen(
            &allocated,
            &assignments,
            &annotations,
            &CodegenConfig {
                num_regs: options.num_regs,
                synth: match options.mode {
                    ManagementMode::Unified => SynthTags::Unified,
                    ManagementMode::Conventional => SynthTags::Plain,
                    ManagementMode::Safe => SynthTags::Safe,
                },
                globals_base: options.globals_base,
            },
        )?
    };
    let guided = match &options.guided_bypass {
        None => None,
        Some(g) => Some(
            crate::guided::apply_guided_bypass(&mut program, g).map_err(CompileError::Guided)?,
        ),
    };
    Ok(Compiled {
        program,
        annotations,
        module: allocated,
        options: *options,
        guided,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucm_machine::{run, NullSink, VmConfig};

    fn exec(src: &str, options: &CompilerOptions) -> Vec<i64> {
        let c = compile(src, options).unwrap();
        run(&c.program, &mut NullSink, &VmConfig::default())
            .unwrap()
            .output
    }

    #[test]
    fn compiles_and_runs_hello() {
        assert_eq!(
            exec("fn main() { print(42); }", &CompilerOptions::default()),
            vec![42]
        );
    }

    #[test]
    fn both_modes_agree_on_output() {
        let src = "global a: [int; 16]; global sum: int; \
            fn main() { let i: int = 0; \
              while i < 16 { a[i] = i * 3; i = i + 1; } \
              i = 0; while i < 16 { sum = sum + a[i]; i = i + 1; } \
              print(sum); }";
        let unified = exec(
            src,
            &CompilerOptions {
                mode: ManagementMode::Unified,
                ..CompilerOptions::default()
            },
        );
        let conventional = exec(
            src,
            &CompilerOptions {
                mode: ManagementMode::Conventional,
                ..CompilerOptions::default()
            },
        );
        assert_eq!(unified, conventional);
        assert_eq!(unified, vec![(0..16).map(|i| i * 3).sum::<i64>()]);
    }

    #[test]
    fn all_strategies_and_register_counts_agree() {
        let src = "fn fib(n: int) -> int { if n < 2 { return n; } \
                     return fib(n - 1) + fib(n - 2); } \
                   fn main() { print(fib(12)); }";
        let mut outputs = Vec::new();
        for strategy in [Strategy::Coloring, Strategy::UsageCount] {
            for k in [6, 8, 16] {
                outputs.push(exec(
                    src,
                    &CompilerOptions {
                        num_regs: k,
                        strategy,
                        ..CompilerOptions::default()
                    },
                ));
            }
        }
        for o in &outputs {
            assert_eq!(*o, vec![144]);
        }
    }

    #[test]
    fn front_end_errors_propagate() {
        let err = compile("fn main() { print(x); }", &CompilerOptions::default()).unwrap_err();
        assert!(matches!(err, CompileError::Lang(_)));
        assert!(err.to_string().contains("unknown variable"));
        let err = compile("fn f() {}", &CompilerOptions::default()).unwrap_err();
        assert!(matches!(err, CompileError::Lower(_)));
    }

    #[test]
    fn alloc_errors_propagate() {
        let err = compile(
            "fn main() { let a: int = 1; let b: int = 2; print(a + b); }",
            &CompilerOptions {
                num_regs: 1,
                ..CompilerOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::Alloc(_)));
    }
}
