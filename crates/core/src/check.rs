//! Coherence checking: execute a compiled program with every data reference
//! streamed into a *data-carrying* functional cache whose served values are
//! cross-validated against the VM's architectural memory by a
//! [`CoherenceOracle`].
//!
//! This is the repo's answer to "how do we know the annotations are not
//! just fast, but *correct*?" — the statistics-only [`ucm_cache::CacheSim`]
//! measures traffic, while the functional cache here actually holds data
//! and trusts the compiler's bypass / last-reference bits the way the
//! paper's hardware would. A wrong bit therefore produces a *wrong value*,
//! which the oracle reports as a structured [`CoherenceViolation`] instead
//! of a silently-different program output.

use crate::pipeline::Compiled;
use ucm_cache::{CacheConfig, CacheStats, CoherenceOracle, CoherenceViolation};
use ucm_machine::{run, MachineProgram, VmConfig, VmError, VmOutcome};

/// The result of one oracle-checked execution.
#[derive(Debug, Clone)]
pub struct CoherenceReport {
    /// VM outcome (program output, step count) — ground truth.
    pub outcome: VmOutcome,
    /// Total data references observed.
    pub refs: u64,
    /// Number of cache-served loads whose value diverged from memory truth.
    pub violations: u64,
    /// The first divergence, if any (flavour, address, PC, stale vs fresh).
    pub first: Option<CoherenceViolation>,
    /// Statistics of the functional cache that served the run.
    pub cache: CacheStats,
}

impl CoherenceReport {
    /// Whether every cache-served load agreed with architectural memory.
    pub fn is_coherent(&self) -> bool {
        self.violations == 0
    }
}

/// Runs `compiled` with its data references checked by a coherence oracle.
///
/// # Errors
///
/// Propagates VM traps (divide by zero, bounds, step limit). A coherence
/// violation is *not* an error — it is the measurement, reported in the
/// returned [`CoherenceReport`].
pub fn run_with_oracle(
    compiled: &Compiled,
    cache_cfg: CacheConfig,
    vm_cfg: &VmConfig,
) -> Result<CoherenceReport, VmError> {
    run_program_with_oracle(&compiled.program, cache_cfg, vm_cfg)
}

/// [`run_with_oracle`] for a bare [`MachineProgram`] — used by the fault
/// campaign, whose mutants exist only at the machine-code level.
///
/// # Errors
///
/// Propagates VM traps.
pub fn run_program_with_oracle(
    program: &MachineProgram,
    cache_cfg: CacheConfig,
    vm_cfg: &VmConfig,
) -> Result<CoherenceReport, VmError> {
    let mut oracle = CoherenceOracle::new(cache_cfg);
    // Mirror the VM's startup state: without this, a global with a nonzero
    // initializer that is read before it is written would be flagged as a
    // (false) violation — the model would serve the zero its empty memory
    // image holds while the VM reads the initializer.
    oracle.preload(program.globals_base, &program.globals_init);
    let outcome = run(program, &mut oracle, vm_cfg)?;
    Ok(CoherenceReport {
        outcome,
        refs: oracle.refs(),
        violations: oracle.violations(),
        first: oracle.first_violation().cloned(),
        cache: *oracle.cache().stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::ManagementMode;
    use crate::pipeline::{compile, CompilerOptions};

    fn check(src: &str, mode: ManagementMode) -> CoherenceReport {
        let c = compile(
            src,
            &CompilerOptions {
                mode,
                ..CompilerOptions::default()
            },
        )
        .unwrap();
        run_with_oracle(&c, CacheConfig::default(), &VmConfig::default()).unwrap()
    }

    const KERNEL: &str = "global a: [int; 32]; global sum: int; \
        fn main() { let i: int = 0; \
          while i < 32 { a[i] = i * 5; i = i + 1; } \
          i = 0; while i < 32 { sum = sum + a[i]; i = i + 1; } \
          print(sum); }";

    #[test]
    fn unified_build_is_coherent() {
        let r = check(KERNEL, ManagementMode::Unified);
        assert!(r.is_coherent(), "first violation: {:?}", r.first);
        assert_eq!(r.outcome.output, vec![(0..32).map(|i| i * 5).sum::<i64>()]);
        assert!(r.refs > 0);
    }

    #[test]
    fn conventional_and_safe_builds_are_coherent() {
        for mode in [ManagementMode::Conventional, ManagementMode::Safe] {
            let r = check(KERNEL, mode);
            assert!(r.is_coherent(), "{mode}: first violation: {:?}", r.first);
        }
    }

    #[test]
    fn recursion_with_spills_is_coherent() {
        // Deep frames + caller saves + spill reloads: the traffic most
        // sensitive to last-reference and frame-exit handling.
        let src = "fn fib(n: int) -> int { if n < 2 { return n; } \
                     return fib(n - 1) + fib(n - 2); } \
                   fn main() { print(fib(15)); }";
        for mode in [
            ManagementMode::Unified,
            ManagementMode::Conventional,
            ManagementMode::Safe,
        ] {
            let r = check(src, mode);
            assert!(r.is_coherent(), "{mode}: first violation: {:?}", r.first);
            assert_eq!(r.outcome.output, vec![610]);
        }
    }
}
