//! Measurement harness: run compiled programs against the cache simulator
//! and compare unified vs conventional management (the paper's §5 setup).

use crate::mode::ManagementMode;
use crate::pipeline::{compile, CompileError, Compiled, CompilerOptions};
use crate::stats::{static_ref_stats, StaticRefStats};
use std::error::Error;
use std::fmt;
use ucm_cache::{CacheConfig, CacheSim, CacheStats};
use ucm_machine::{run, CountSink, TeeSink, VmConfig, VmError, VmOutcome};

/// One program execution measured against a cache.
#[derive(Debug, Clone)]
pub struct RunMeasurement {
    /// VM outcome (program output, step count).
    pub outcome: VmOutcome,
    /// Dynamic reference-class counts.
    pub counts: CountSink,
    /// Cache statistics.
    pub cache: CacheStats,
}

/// Runs `compiled` with its references streamed into a cache of `cache_cfg`.
///
/// For conventionally-compiled programs pass
/// [`CacheConfig::conventional`] geometry or rely on the `Plain` tags —
/// both give baseline behaviour.
///
/// # Errors
///
/// Propagates VM traps (divide by zero, bounds, step limit).
pub fn run_with_cache(
    compiled: &Compiled,
    cache_cfg: CacheConfig,
    vm_cfg: &VmConfig,
) -> Result<RunMeasurement, VmError> {
    let mut cache = CacheSim::new(cache_cfg);
    let mut counts = CountSink::default();
    let outcome = {
        let mut tee = TeeSink {
            a: &mut counts,
            b: &mut cache,
        };
        run(&compiled.program, &mut tee, vm_cfg)?
    };
    Ok(RunMeasurement {
        outcome,
        counts,
        cache: *cache.stats(),
    })
}

/// A unified-vs-conventional comparison for one program — one row of the
/// paper's Figure 5 plus the underlying physics.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Program label.
    pub name: String,
    /// Static reference statistics of the unified binary.
    pub static_stats: StaticRefStats,
    /// Measurement of the conventional build.
    pub conventional: RunMeasurement,
    /// Measurement of the unified build.
    pub unified: RunMeasurement,
}

impl Comparison {
    /// Static % of references classified unambiguous (paper: 70–80%).
    pub fn static_unambiguous_pct(&self) -> f64 {
        100.0 * self.static_stats.unambiguous_fraction()
    }

    /// Dynamic % of references classified unambiguous (paper: 45–75%).
    pub fn dynamic_unambiguous_pct(&self) -> f64 {
        100.0 * self.unified.counts.unambiguous_fraction()
    }

    /// Reduction in references entering the data cache (paper: ~60%).
    pub fn cache_ref_reduction_pct(&self) -> f64 {
        let conv = self.conventional.cache.cache_refs();
        let uni = self.unified.cache.cache_refs();
        if conv == 0 {
            0.0
        } else {
            100.0 * (1.0 - uni as f64 / conv as f64)
        }
    }

    /// Reduction in memory-bus words moved.
    pub fn bus_words_reduction_pct(&self) -> f64 {
        let conv = self.conventional.cache.bus_words();
        let uni = self.unified.cache.bus_words();
        if conv == 0 {
            0.0
        } else {
            100.0 * (1.0 - uni as f64 / conv as f64)
        }
    }

    /// Speedup of total memory access time (paper §4.4 claims ≥ 2×).
    pub fn access_time_speedup(&self, lat: ucm_cache::Latency) -> f64 {
        let conv = self.conventional.cache.access_time(lat);
        let uni = self.unified.cache.access_time(lat);
        if uni == 0 {
            1.0
        } else {
            conv as f64 / uni as f64
        }
    }
}

/// Errors from a comparison run.
#[derive(Debug)]
pub enum EvalError {
    /// Compilation failed.
    Compile(CompileError),
    /// Execution trapped.
    Vm(VmError),
    /// The two builds disagreed on program output (a compiler bug).
    OutputMismatch {
        /// Program label.
        name: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Compile(e) => write!(f, "{e}"),
            EvalError::Vm(e) => write!(f, "{e}"),
            EvalError::OutputMismatch { name } => {
                write!(f, "unified and conventional builds of `{name}` disagree")
            }
        }
    }
}

impl Error for EvalError {}

impl From<CompileError> for EvalError {
    fn from(e: CompileError) -> Self {
        EvalError::Compile(e)
    }
}

impl From<VmError> for EvalError {
    fn from(e: VmError) -> Self {
        EvalError::Vm(e)
    }
}

/// Compiles `src` in both modes, runs both against `cache_cfg`, and
/// cross-checks that program outputs agree.
///
/// # Errors
///
/// Returns an [`EvalError`] on compile failure, VM trap, or output mismatch
/// between the two builds.
pub fn compare(
    name: &str,
    src: &str,
    base: &CompilerOptions,
    cache_cfg: CacheConfig,
    vm_cfg: &VmConfig,
) -> Result<Comparison, EvalError> {
    let unified_build = compile(
        src,
        &CompilerOptions {
            mode: ManagementMode::Unified,
            ..*base
        },
    )?;
    let conventional_build = compile(
        src,
        &CompilerOptions {
            mode: ManagementMode::Conventional,
            ..*base
        },
    )?;
    let unified = run_with_cache(&unified_build, cache_cfg, vm_cfg)?;
    let conventional = run_with_cache(&conventional_build, cache_cfg.conventional(), vm_cfg)?;
    if unified.outcome.output != conventional.outcome.output {
        return Err(EvalError::OutputMismatch { name: name.into() });
    }
    Ok(Comparison {
        name: name.into(),
        static_stats: static_ref_stats(&unified_build.program),
        conventional,
        unified,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const ARRAY_WALK: &str = "global a: [int; 64]; global sum: int; \
        fn main() { let i: int = 0; let pass: int = 0; \
          while pass < 4 { i = 0; \
            while i < 64 { a[i] = a[i] + pass; i = i + 1; } pass = pass + 1; } \
          i = 0; while i < 64 { sum = sum + a[i]; i = i + 1; } print(sum); }";

    fn compare_default(src: &str) -> Comparison {
        compare(
            "t",
            src,
            &CompilerOptions::default(),
            CacheConfig::default(),
            &VmConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn unified_reduces_cache_references() {
        let c = compare_default(ARRAY_WALK);
        assert!(
            c.cache_ref_reduction_pct() > 0.0,
            "unified must keep unambiguous traffic out of the cache \
             (reduction = {:.1}%)",
            c.cache_ref_reduction_pct()
        );
        assert!(c.dynamic_unambiguous_pct() > 0.0);
        assert!(c.static_unambiguous_pct() > 0.0);
    }

    #[test]
    fn totals_are_mode_independent() {
        let c = compare_default(ARRAY_WALK);
        assert_eq!(
            c.conventional.counts.total(),
            c.unified.counts.total(),
            "same code shape → same number of data references"
        );
        assert_eq!(
            c.conventional.counts.unambiguous, c.unified.counts.unambiguous,
            "classification is mode-independent"
        );
        // In conventional mode nothing bypasses.
        assert_eq!(c.conventional.counts.bypassed, 0);
    }

    #[test]
    fn unified_never_inflates_cache_refs() {
        let c = compare_default(ARRAY_WALK);
        assert!(c.unified.cache.cache_refs() <= c.conventional.cache.cache_refs());
    }

    #[test]
    fn output_checked_across_modes() {
        let c = compare_default("global g: int; fn main() { g = 7; print(g * 6); }");
        assert_eq!(c.unified.outcome.output, vec![42]);
    }
}
