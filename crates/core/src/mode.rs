//! Management-mode selection.

use std::fmt;

/// How registers and cache are managed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ManagementMode {
    /// The paper's proposal: compiler-classified references, the four
    /// load/store flavours, cache bypass, and last-reference invalidation.
    #[default]
    Unified,
    /// The 1980s baseline: cache managed purely by hardware; every data
    /// reference goes through the cache.
    Conventional,
    /// Graceful degradation: every reference is treated as ambiguous — no
    /// bypass, no take-and-invalidate, no last-reference discards. The
    /// traffic optimisations are forfeited, but coherence holds regardless
    /// of what the classifier or liveness analyses concluded (the cache
    /// degenerates to a plain write-back cache with flavour labels).
    Safe,
}

impl fmt::Display for ManagementMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManagementMode::Unified => write!(f, "unified"),
            ManagementMode::Conventional => write!(f, "conventional"),
            ManagementMode::Safe => write!(f, "safe"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_default() {
        assert_eq!(ManagementMode::default(), ManagementMode::Unified);
        assert_eq!(ManagementMode::Unified.to_string(), "unified");
        assert_eq!(ManagementMode::Conventional.to_string(), "conventional");
        assert_eq!(ManagementMode::Safe.to_string(), "safe");
    }
}
