//! Management-mode selection.

use std::fmt;

/// How registers and cache are managed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ManagementMode {
    /// The paper's proposal: compiler-classified references, the four
    /// load/store flavours, cache bypass, and last-reference invalidation.
    #[default]
    Unified,
    /// The 1980s baseline: cache managed purely by hardware; every data
    /// reference goes through the cache.
    Conventional,
}

impl fmt::Display for ManagementMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManagementMode::Unified => write!(f, "unified"),
            ManagementMode::Conventional => write!(f, "conventional"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_default() {
        assert_eq!(ManagementMode::default(), ManagementMode::Unified);
        assert_eq!(ManagementMode::Unified.to_string(), "unified");
        assert_eq!(ManagementMode::Conventional.to_string(), "conventional");
    }
}
