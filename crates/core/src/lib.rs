//! # ucm-core — unified management of registers and cache
//!
//! The paper's contribution (*Chi & Dietz, PLDI 1989*): a single
//! compiler-driven model for registers **and** the data cache.
//!
//! * [`annotate`] — classifies every memory reference (via
//!   `ucm-analysis` alias sets) and assigns the four load/store flavours of
//!   §4.3 plus last-reference bits from liveness (§3.1–3.2)
//! * [`pipeline`] — the end-to-end compiler: Mini source → checked AST →
//!   IR → register allocation (spills routed to cache per §4.2) → annotated
//!   machine code
//! * [`stats`] — static reference statistics (Figure 5's static series)
//! * [`evaluate`] — runs unified vs conventional builds against the cache
//!   simulator and reports traffic reductions (Figure 5's dynamic series)
//! * [`timing`] — prices the same executions in cycles via `ucm-timing`
//!   (write buffer, bus contention, CPI) and compares all three modes
//! * [`check`] — oracle-checked execution: a data-carrying functional cache
//!   trusts the annotations, and every cache-served load is cross-validated
//!   against the VM's architectural memory
//! * [`faults`] — deterministic annotation fault injection and a campaign
//!   runner classifying each mutant as benign, traffic-regressing, or
//!   coherence-breaking
//! * [`guided`] — analysis-guided bypass: the must/may cache analysis
//!   (`ucm-cache::classify`) proves references that can never hit, and the
//!   rewriter sets their bypass bits — cache knowledge the paper's
//!   alias-only rule couldn't use
//!
//! ## Example: reproduce one Figure-5 style measurement
//!
//! ```rust
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use ucm_core::evaluate::compare;
//! use ucm_core::pipeline::CompilerOptions;
//! use ucm_cache::CacheConfig;
//! use ucm_machine::VmConfig;
//!
//! let src = "global a: [int; 32]; global sum: int;
//!     fn main() {
//!         let i: int = 0;
//!         while i < 32 { a[i] = i; i = i + 1; }
//!         i = 0;
//!         while i < 32 { sum = sum + a[i]; i = i + 1; }
//!         print(sum);
//!     }";
//! let cmp = compare("walk", src, &CompilerOptions::default(),
//!                   CacheConfig::default(), &VmConfig::default())?;
//! assert!(cmp.cache_ref_reduction_pct() > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod annotate;
pub mod check;
pub mod evaluate;
pub mod faults;
pub mod guided;
pub mod mode;
pub mod pipeline;
pub mod promote;
pub mod stats;
pub mod timing;

pub use annotate::Annotations;
pub use check::{run_with_oracle, CoherenceReport};
pub use evaluate::{compare, run_with_cache, Comparison, EvalError, RunMeasurement};
pub use faults::{
    desync_stores, run_campaign, Campaign, CampaignConfig, FaultClass, FaultKind, FaultReport,
    FaultSite,
};
pub use guided::{apply_guided_bypass, GuidedBypassConfig, GuidedReport};
pub use mode::ManagementMode;
pub use pipeline::{compile, compile_module, CompileError, Compiled, CompilerOptions};
pub use promote::{promote_locals, PromotionStats};
pub use stats::{static_ref_stats, StaticRefStats};
pub use timing::{compare_timing, run_with_timing, TimedRun, TimingComparison};
