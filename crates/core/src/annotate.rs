//! The unified-management annotation pass (paper §4.2–4.3).
//!
//! Maps every IR memory reference to one of the four load/store flavours:
//!
//! | reference                        | flavour      |
//! |----------------------------------|--------------|
//! | spill reload                     | `UmAm_LOAD`  |
//! | spill store                      | `AmSp_STORE` |
//! | unambiguous load                 | `UmAm_LOAD`  |
//! | unambiguous store (not a spill)  | `UmAm_STORE` |
//! | ambiguous load                   | `Am_LOAD`    |
//! | ambiguous store                  | `AmSp_STORE` |
//!
//! Ambiguous references additionally carry the liveness-derived
//! *last-reference* bit (§3.1–3.2); unambiguous loads invalidate on hit by
//! their own semantics, so their bit is set unconditionally.

use crate::mode::ManagementMode;
use std::collections::HashMap;
use ucm_analysis::{Classification, MemLastRefs, RefClass};
use ucm_ir::{FuncId, Instr, InstrRef, Module, RefName};
use ucm_machine::{Flavour, MemTag, MemTagger};

/// The computed tags for every memory instruction of a module.
#[derive(Debug, Clone)]
pub struct Annotations {
    tags: HashMap<(FuncId, InstrRef), MemTag>,
    /// The classification the tags were derived from.
    pub classification: Classification,
}

impl Annotations {
    /// Runs classification, memory liveness, and flavour assignment on a
    /// (post-regalloc) module.
    pub fn compute(module: &Module, mode: ManagementMode) -> Self {
        let classification = Classification::compute(module);
        let last_refs = MemLastRefs::compute(module, &classification);
        let mut tags = HashMap::new();
        for fid in module.func_ids() {
            for (iref, instr) in module.func(fid).instrs() {
                let Some(mem) = instr.mem() else { continue };
                let is_load = matches!(instr, Instr::Load { .. });
                let is_spill = matches!(mem.name, RefName::Spill(_));
                let class = classification.class_of(fid, iref);
                let unambiguous = class == RefClass::Unambiguous;
                let tag = match mode {
                    ManagementMode::Conventional => MemTag::plain(unambiguous),
                    ManagementMode::Unified => {
                        let (flavour, last_ref) = match (is_load, is_spill, unambiguous) {
                            (true, true, _) | (true, false, true) => (Flavour::UmAmLoad, true),
                            (false, true, _) => (Flavour::AmSpStore, false),
                            (false, false, true) => (Flavour::UmAmStore, false),
                            (true, false, false) => {
                                (Flavour::AmLoad, last_refs.is_last_ref(fid, iref))
                            }
                            (false, false, false) => {
                                (Flavour::AmSpStore, last_refs.is_last_ref(fid, iref))
                            }
                        };
                        MemTag {
                            flavour,
                            last_ref,
                            unambiguous,
                        }
                    }
                };
                tags.insert((fid, iref), tag);
            }
        }
        Annotations {
            tags,
            classification,
        }
    }

    /// Number of annotated memory instructions.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the module had no memory instructions.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }
}

impl MemTagger for Annotations {
    fn tag_of(&self, func: FuncId, iref: InstrRef) -> MemTag {
        self.tags[&(func, iref)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use ucm_ir::lower;
    use ucm_lang::parse_and_check;
    use ucm_regalloc::{allocate, Strategy};

    fn annotated(src: &str, k: usize) -> (Module, Annotations) {
        let module = lower(&parse_and_check(src).unwrap()).unwrap();
        let mut allocated = Module {
            globals: module.globals.clone(),
            funcs: Vec::new(),
            main: module.main,
        };
        for f in &module.funcs {
            allocated
                .funcs
                .push(allocate(f.clone(), k, Strategy::Coloring).unwrap().func);
        }
        let ann = Annotations::compute(&allocated, ManagementMode::Unified);
        (allocated, ann)
    }

    fn flavours_of(m: &Module, ann: &Annotations) -> Vec<(String, Flavour, bool)> {
        let mut out = Vec::new();
        for fid in m.func_ids() {
            for (iref, instr) in m.func(fid).instrs() {
                if instr.is_memory() {
                    let t = ann.tag_of(fid, iref);
                    out.push((instr.to_string(), t.flavour, t.last_ref));
                }
            }
        }
        out
    }

    #[test]
    fn unambiguous_globals_get_umam_flavours() {
        let (m, ann) = annotated("global g: int; fn main() { g = g + 1; print(g); }", 8);
        let fl: HashSet<Flavour> = flavours_of(&m, &ann).iter().map(|x| x.1).collect();
        assert!(fl.contains(&Flavour::UmAmLoad));
        assert!(fl.contains(&Flavour::UmAmStore));
        assert!(!fl.contains(&Flavour::AmLoad));
    }

    #[test]
    fn arrays_get_am_flavours() {
        let (m, ann) = annotated(
            "global a: [int; 8]; fn main() { a[0] = 1; print(a[0]); }",
            8,
        );
        let fl: Vec<Flavour> = flavours_of(&m, &ann).iter().map(|x| x.1).collect();
        assert!(fl.contains(&Flavour::AmSpStore));
        assert!(fl.contains(&Flavour::AmLoad));
        assert!(!fl.contains(&Flavour::UmAmStore));
    }

    #[test]
    fn spill_code_gets_spill_flavours() {
        // Force spills with k=2 and many live values.
        let (m, ann) = annotated(
            "fn main() { let a: int = 1; let b: int = 2; let c: int = 3; \
             print(a + b + c); print(c + b + a); }",
            2,
        );
        let spill_tags: Vec<(String, Flavour, bool)> = flavours_of(&m, &ann)
            .into_iter()
            .filter(|(s, _, _)| s.contains("spill"))
            .collect();
        assert!(!spill_tags.is_empty(), "expected spill code");
        for (s, fl, last) in spill_tags {
            if s.contains("load") {
                assert_eq!(fl, Flavour::UmAmLoad, "{s}");
                assert!(last, "spill reloads kill the cached copy: {s}");
            } else {
                assert_eq!(fl, Flavour::AmSpStore, "{s}");
            }
        }
    }

    #[test]
    fn unambiguous_loads_carry_last_ref() {
        let (m, ann) = annotated("global g: int; fn main() { print(g); }", 8);
        let all = flavours_of(&m, &ann);
        let (_, fl, last) = &all[0];
        assert_eq!(*fl, Flavour::UmAmLoad);
        assert!(*last);
    }

    #[test]
    fn ambiguous_last_ref_propagates_from_liveness() {
        let (m, ann) = annotated(
            "fn main() { let a: [int; 4]; a[0] = 1; print(a[0] + a[0]); }",
            8,
        );
        let loads: Vec<(String, Flavour, bool)> = flavours_of(&m, &ann)
            .into_iter()
            .filter(|(s, _, _)| s.contains("load"))
            .collect();
        // The last load of the dead local array is marked.
        assert!(loads.last().unwrap().2, "final array read marked last-ref");
        assert!(!loads[0].2);
    }

    #[test]
    fn conventional_mode_is_all_plain() {
        let module = lower(
            &parse_and_check("global g: int; global a: [int; 4]; \
                              fn main() { g = 1; a[0] = g; print(a[0]); }")
                .unwrap(),
        )
        .unwrap();
        let ann = Annotations::compute(&module, ManagementMode::Conventional);
        for fid in module.func_ids() {
            for (iref, instr) in module.func(fid).instrs() {
                if instr.is_memory() {
                    let t = ann.tag_of(fid, iref);
                    assert_eq!(t.flavour, Flavour::Plain);
                    assert!(!t.last_ref);
                }
            }
        }
        // Classification still recorded for statistics.
        assert!(ann.classification.static_counts().unambiguous > 0);
    }

    #[test]
    fn every_memory_instruction_is_tagged() {
        let (m, ann) = annotated(
            "global a: [int; 8]; global g: int; \
             fn f(p: *int) -> int { return *p + g; } \
             fn main() { let i: int = 0; while i < 8 { a[i] = f(&g); i = i + 1; } }",
            4,
        );
        let mem_count: usize = m
            .func_ids()
            .map(|f| {
                m.func(f)
                    .instrs()
                    .filter(|(_, i)| i.is_memory())
                    .count()
            })
            .sum();
        assert_eq!(ann.len(), mem_count);
        assert!(!ann.is_empty());
    }
}
