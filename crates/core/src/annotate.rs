//! The unified-management annotation pass (paper §4.2–4.3).
//!
//! Maps every IR memory reference to one of the four load/store flavours:
//!
//! | reference                        | flavour      |
//! |----------------------------------|--------------|
//! | spill reload (final use)         | `UmAm_LOAD`  |
//! | spill reload (value used again)  | `Am_LOAD`    |
//! | spill store                      | `AmSp_STORE` |
//! | unambiguous load                 | `UmAm_LOAD`  |
//! | unambiguous store (not a spill)  | `UmAm_STORE` |
//! | ambiguous load                   | `Am_LOAD`    |
//! | ambiguous store                  | `AmSp_STORE` |
//!
//! Ambiguous references additionally carry the liveness-derived
//! *last-reference* bit (§3.1–3.2); unambiguous loads invalidate on hit by
//! their own semantics, so their bit is set unconditionally.
//!
//! Spill reloads need their own liveness refinement
//! ([`ucm_analysis::SpillLastRefs`]): the spiller reloads once per *use*,
//! and a take-and-invalidate at a non-final reload would consume the cached
//! copy that a later reload still needs — the discarded dirty line never
//! reaches memory, so trusting bypass hardware would serve the later reload
//! a stale word. Only the final reload of each spilled value takes.
//!
//! [`ManagementMode::Safe`] keeps every reference on the through-cache
//! ambiguous path (`Am_LOAD`/`AmSp_STORE`, never a last-reference bit):
//! coherent by construction, used as the graceful-degradation fallback when
//! the annotations themselves are suspect.

use crate::mode::ManagementMode;
use std::collections::HashMap;
use ucm_analysis::{Classification, MemLastRefs, RefClass, SpillLastRefs};
use ucm_ir::{FuncId, Instr, InstrRef, Module, RefName};
use ucm_machine::{Flavour, MemTag, MemTagger};

/// The computed tags for every memory instruction of a module.
#[derive(Debug, Clone)]
pub struct Annotations {
    tags: HashMap<(FuncId, InstrRef), MemTag>,
    /// The classification the tags were derived from.
    pub classification: Classification,
}

impl Annotations {
    /// Runs classification, memory liveness, and flavour assignment on a
    /// (post-regalloc) module.
    pub fn compute(module: &Module, mode: ManagementMode) -> Self {
        let classification = Classification::compute(module);
        let last_refs = MemLastRefs::compute(module, &classification);
        let spill_last = SpillLastRefs::compute(module);
        let mut tags = HashMap::new();
        for fid in module.func_ids() {
            for (iref, instr) in module.func(fid).instrs() {
                let Some(mem) = instr.mem() else { continue };
                let is_load = matches!(instr, Instr::Load { .. });
                let is_spill = matches!(mem.name, RefName::Spill(_));
                let class = classification.class_of(fid, iref);
                let unambiguous = class == RefClass::Unambiguous;
                let tag = match mode {
                    ManagementMode::Conventional => MemTag::plain(unambiguous),
                    ManagementMode::Safe => MemTag {
                        flavour: if is_load {
                            Flavour::AmLoad
                        } else {
                            Flavour::AmSpStore
                        },
                        last_ref: false,
                        unambiguous,
                    },
                    ManagementMode::Unified => {
                        let (flavour, last_ref) = match (is_load, is_spill, unambiguous) {
                            // A spill reload takes only if no later reload
                            // still needs the slot's value.
                            (true, true, _) => {
                                if spill_last.is_last_ref(fid, iref) {
                                    (Flavour::UmAmLoad, true)
                                } else {
                                    (Flavour::AmLoad, false)
                                }
                            }
                            (true, false, true) => (Flavour::UmAmLoad, true),
                            (false, true, _) => (Flavour::AmSpStore, false),
                            (false, false, true) => (Flavour::UmAmStore, false),
                            (true, false, false) => {
                                (Flavour::AmLoad, last_refs.is_last_ref(fid, iref))
                            }
                            (false, false, false) => {
                                (Flavour::AmSpStore, last_refs.is_last_ref(fid, iref))
                            }
                        };
                        MemTag {
                            flavour,
                            last_ref,
                            unambiguous,
                        }
                    }
                };
                tags.insert((fid, iref), tag);
            }
        }
        Annotations {
            tags,
            classification,
        }
    }

    /// Number of annotated memory instructions.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the module had no memory instructions.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }
}

impl MemTagger for Annotations {
    fn tag_of(&self, func: FuncId, iref: InstrRef) -> MemTag {
        self.tags[&(func, iref)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use ucm_ir::lower;
    use ucm_lang::parse_and_check;
    use ucm_regalloc::{allocate, Strategy};

    fn annotated(src: &str, k: usize) -> (Module, Annotations) {
        let module = lower(&parse_and_check(src).unwrap()).unwrap();
        let mut allocated = Module {
            globals: module.globals.clone(),
            funcs: Vec::new(),
            main: module.main,
        };
        for f in &module.funcs {
            allocated
                .funcs
                .push(allocate(f.clone(), k, Strategy::Coloring).unwrap().func);
        }
        let ann = Annotations::compute(&allocated, ManagementMode::Unified);
        (allocated, ann)
    }

    fn flavours_of(m: &Module, ann: &Annotations) -> Vec<(String, Flavour, bool)> {
        let mut out = Vec::new();
        for fid in m.func_ids() {
            for (iref, instr) in m.func(fid).instrs() {
                if instr.is_memory() {
                    let t = ann.tag_of(fid, iref);
                    out.push((instr.to_string(), t.flavour, t.last_ref));
                }
            }
        }
        out
    }

    #[test]
    fn unambiguous_globals_get_umam_flavours() {
        let (m, ann) = annotated("global g: int; fn main() { g = g + 1; print(g); }", 8);
        let fl: HashSet<Flavour> = flavours_of(&m, &ann).iter().map(|x| x.1).collect();
        assert!(fl.contains(&Flavour::UmAmLoad));
        assert!(fl.contains(&Flavour::UmAmStore));
        assert!(!fl.contains(&Flavour::AmLoad));
    }

    #[test]
    fn arrays_get_am_flavours() {
        let (m, ann) = annotated(
            "global a: [int; 8]; fn main() { a[0] = 1; print(a[0]); }",
            8,
        );
        let fl: Vec<Flavour> = flavours_of(&m, &ann).iter().map(|x| x.1).collect();
        assert!(fl.contains(&Flavour::AmSpStore));
        assert!(fl.contains(&Flavour::AmLoad));
        assert!(!fl.contains(&Flavour::UmAmStore));
    }

    #[test]
    fn spill_code_gets_spill_flavours() {
        // Force spills with k=2 and many live values.
        let (m, ann) = annotated(
            "fn main() { let a: int = 1; let b: int = 2; let c: int = 3; \
             print(a + b + c); print(c + b + a); }",
            2,
        );
        let spill_tags: Vec<(String, Flavour, bool)> = flavours_of(&m, &ann)
            .into_iter()
            .filter(|(s, _, _)| s.contains("spill"))
            .collect();
        assert!(!spill_tags.is_empty(), "expected spill code");
        let mut saw_take = false;
        for (s, fl, last) in spill_tags {
            if s.contains("load") {
                // The final reload of a value takes-and-invalidates; a
                // reload whose slot is read again stays on the ambiguous
                // path so the cached copy survives.
                match fl {
                    Flavour::UmAmLoad => {
                        assert!(last, "take reloads carry the last-ref bit: {s}");
                        saw_take = true;
                    }
                    Flavour::AmLoad => {
                        assert!(!last, "non-final reloads must not take: {s}");
                    }
                    other => panic!("unexpected spill reload flavour {other:?}: {s}"),
                }
            } else {
                assert_eq!(fl, Flavour::AmSpStore, "{s}");
            }
        }
        assert!(saw_take, "every spilled value has a final reload");
    }

    #[test]
    fn only_final_reload_of_a_twice_used_spill_takes() {
        // a and b stay live across both prints under k=2, so at least one
        // value is spilled once and reloaded at several distinct uses.
        let (m, ann) = annotated(
            "fn main() { let a: int = 1; let b: int = 2; let c: int = 3; \
             print(a + b + c); print(c + b + a); print(a); }",
            2,
        );
        // Group reload tags by the slot they reference.
        let mut by_slot: std::collections::HashMap<String, Vec<bool>> =
            std::collections::HashMap::new();
        for fid in m.func_ids() {
            for (iref, instr) in m.func(fid).instrs() {
                if let ucm_ir::Instr::Load { mem, .. } = instr {
                    if matches!(mem.name, ucm_ir::RefName::Spill(_)) {
                        let t = ann.tag_of(fid, iref);
                        by_slot
                            .entry(mem.name.to_string())
                            .or_default()
                            .push(t.flavour == Flavour::UmAmLoad);
                    }
                }
            }
        }
        let multi: Vec<_> = by_slot.values().filter(|v| v.len() > 1).collect();
        assert!(!multi.is_empty(), "expected a slot reloaded more than once");
        for takes in multi {
            assert_eq!(
                takes.iter().filter(|&&t| t).count(),
                1,
                "exactly one take per multi-reload slot (straight-line code)"
            );
        }
    }

    #[test]
    fn safe_mode_keeps_everything_ambiguous() {
        let module = lower(
            &parse_and_check(
                "global g: int; global a: [int; 4]; \
                 fn main() { g = 1; a[0] = g; print(a[0]); }",
            )
            .unwrap(),
        )
        .unwrap();
        let ann = Annotations::compute(&module, ManagementMode::Safe);
        for fid in module.func_ids() {
            for (iref, instr) in module.func(fid).instrs() {
                if instr.is_memory() {
                    let t = ann.tag_of(fid, iref);
                    assert!(
                        matches!(t.flavour, Flavour::AmLoad | Flavour::AmSpStore),
                        "no bypass flavours in safe mode"
                    );
                    assert!(!t.flavour.bypass_bit());
                    assert!(!t.last_ref, "no discards in safe mode");
                }
            }
        }
        // Classification is still recorded, for reporting what was given up.
        assert!(ann.classification.static_counts().unambiguous > 0);
    }

    #[test]
    fn unambiguous_loads_carry_last_ref() {
        let (m, ann) = annotated("global g: int; fn main() { print(g); }", 8);
        let all = flavours_of(&m, &ann);
        let (_, fl, last) = &all[0];
        assert_eq!(*fl, Flavour::UmAmLoad);
        assert!(*last);
    }

    #[test]
    fn ambiguous_last_ref_propagates_from_liveness() {
        let (m, ann) = annotated(
            "fn main() { let a: [int; 4]; a[0] = 1; print(a[0] + a[0]); }",
            8,
        );
        let loads: Vec<(String, Flavour, bool)> = flavours_of(&m, &ann)
            .into_iter()
            .filter(|(s, _, _)| s.contains("load"))
            .collect();
        // The last load of the dead local array is marked.
        assert!(loads.last().unwrap().2, "final array read marked last-ref");
        assert!(!loads[0].2);
    }

    #[test]
    fn conventional_mode_is_all_plain() {
        let module = lower(
            &parse_and_check(
                "global g: int; global a: [int; 4]; \
                              fn main() { g = 1; a[0] = g; print(a[0]); }",
            )
            .unwrap(),
        )
        .unwrap();
        let ann = Annotations::compute(&module, ManagementMode::Conventional);
        for fid in module.func_ids() {
            for (iref, instr) in module.func(fid).instrs() {
                if instr.is_memory() {
                    let t = ann.tag_of(fid, iref);
                    assert_eq!(t.flavour, Flavour::Plain);
                    assert!(!t.last_ref);
                }
            }
        }
        // Classification still recorded for statistics.
        assert!(ann.classification.static_counts().unambiguous > 0);
    }

    #[test]
    fn every_memory_instruction_is_tagged() {
        let (m, ann) = annotated(
            "global a: [int; 8]; global g: int; \
             fn f(p: *int) -> int { return *p + g; } \
             fn main() { let i: int = 0; while i < 8 { a[i] = f(&g); i = i + 1; } }",
            4,
        );
        let mem_count: usize = m
            .func_ids()
            .map(|f| m.func(f).instrs().filter(|(_, i)| i.is_memory()).count())
            .sum();
        assert_eq!(ann.len(), mem_count);
        assert!(!ann.is_empty());
    }
}
