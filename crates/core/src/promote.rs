//! Block-local promotion of unambiguous scalars.
//!
//! The "register allocation (with cache bypass)" half of the unified model
//! (paper Figure 4): within a basic block, an unambiguous scalar is loaded
//! into a register once, subsequent reads copy from the register, and dirty
//! values are stored back at block exit (or before anything that could
//! observe memory: a call, or a dereference that might be a true alias of
//! the scalar).
//!
//! This models the statement-level register reuse of a late-1980s optimizing
//! compiler, and it is what makes cache bypass *profitable*: the residual
//! memory traffic of register-resident values is rare enough that sending it
//! straight to main memory costs little while keeping the cache clean for
//! ambiguous data.

use std::collections::HashMap;
use ucm_analysis::{Classification, RefClass};
use ucm_ir::{FuncId, Instr, InstrRef, MemObject, MemRef, Module, RefName, VReg};

/// Statistics of one promotion run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PromotionStats {
    /// Loads replaced by register copies.
    pub loads_eliminated: usize,
    /// Stores coalesced (overwritten before block exit).
    pub stores_eliminated: usize,
}

/// Runs block-local promotion over every function of `module`, in place.
///
/// Only references classified [`RefClass::Unambiguous`] with a
/// [`RefName::Scalar`] name participate; everything else (arrays, derefs,
/// aliased scalars) is untouched, and acts as a barrier when it could read
/// promoted state.
pub fn promote_locals(module: &mut Module) -> PromotionStats {
    let classification = Classification::compute(module);
    let mut stats = PromotionStats::default();
    for fid_idx in 0..module.funcs.len() {
        let fid = FuncId::from_index(fid_idx);
        promote_function(module, fid, &classification, &mut stats);
    }
    stats
}

#[derive(Debug, Clone, Copy)]
struct CachedValue {
    reg: VReg,
    dirty: bool,
}

fn promote_function(
    module: &mut Module,
    fid: FuncId,
    classification: &Classification,
    stats: &mut PromotionStats,
) {
    let nblocks = module.func(fid).blocks.len();
    for b in 0..nblocks {
        let bid = ucm_ir::BlockId::from_index(b);
        let old = std::mem::take(&mut module.func_mut(fid).block_mut(bid).instrs);
        let mut new: Vec<Instr> = Vec::with_capacity(old.len());
        let mut cached: HashMap<MemObject, CachedValue> = HashMap::new();

        let flush_all = |cached: &mut HashMap<MemObject, CachedValue>, new: &mut Vec<Instr>| {
            // Deterministic order for reproducible binaries.
            let mut dirty: Vec<(MemObject, VReg)> = cached
                .iter()
                .filter(|(_, v)| v.dirty)
                .map(|(o, v)| (*o, v.reg))
                .collect();
            dirty.sort_unstable_by_key(|(o, _)| *o);
            for (obj, reg) in dirty {
                new.push(Instr::Store {
                    src: reg,
                    mem: MemRef::scalar(obj),
                });
            }
            cached.clear();
        };

        for (idx, instr) in old.into_iter().enumerate() {
            let iref = InstrRef::new(bid, idx);
            let promotable = |mem: &MemRef| -> Option<MemObject> {
                match mem.name {
                    RefName::Scalar(obj)
                        if classification.get(fid, iref) == Some(RefClass::Unambiguous) =>
                    {
                        Some(obj)
                    }
                    _ => None,
                }
            };
            match &instr {
                Instr::Load { dst, mem } if promotable(mem).is_some() => {
                    let obj = promotable(mem).expect("guard checked");
                    let dst_reg = *dst;
                    match cached.get(&obj) {
                        Some(c) => {
                            stats.loads_eliminated += 1;
                            new.push(Instr::Copy {
                                dst: dst_reg,
                                src: c.reg,
                            });
                        }
                        None => {
                            new.push(instr);
                            cached.insert(
                                obj,
                                CachedValue {
                                    reg: dst_reg,
                                    dirty: false,
                                },
                            );
                        }
                    }
                    // The load's destination may shadow another cached reg.
                    invalidate_redefined(&mut cached, &mut new, dst_reg, Some(obj), stats);
                }
                Instr::Store { src, mem } if promotable(mem).is_some() => {
                    let obj = promotable(mem).expect("guard checked");
                    if let Some(prev) = cached.insert(
                        obj,
                        CachedValue {
                            reg: *src,
                            dirty: true,
                        },
                    ) {
                        if prev.dirty {
                            stats.stores_eliminated += 1;
                        }
                    }
                }
                Instr::Call { .. } => {
                    // The callee may read or write any escaped scalar.
                    flush_all(&mut cached, &mut new);
                    let def = instr.def();
                    new.push(instr);
                    if let Some(d) = def {
                        invalidate_redefined(&mut cached, &mut new, d, None, stats);
                    }
                }
                Instr::Load { mem, .. } | Instr::Store { mem, .. }
                    if matches!(mem.name, RefName::Deref(_)) =>
                {
                    // A dereference can be a true alias of a promoted scalar:
                    // make memory consistent and forget everything.
                    flush_all(&mut cached, &mut new);
                    let def = instr.def();
                    new.push(instr);
                    if let Some(d) = def {
                        invalidate_redefined(&mut cached, &mut new, d, None, stats);
                    }
                }
                _ => {
                    let def = instr.def();
                    new.push(instr);
                    if let Some(d) = def {
                        invalidate_redefined(&mut cached, &mut new, d, None, stats);
                    }
                }
            }
        }
        flush_all(&mut cached, &mut new);
        module.func_mut(fid).block_mut(bid).instrs = new;
    }
}

/// Drops (after flushing, if dirty) every cache entry whose register was
/// just redefined by an instruction that is *already* in `new`.
///
/// The flush store is correct only when inserted *before* the redefinition,
/// so it is spliced in front of the last instruction.
fn invalidate_redefined(
    cached: &mut HashMap<MemObject, CachedValue>,
    new: &mut Vec<Instr>,
    redefined: VReg,
    keep: Option<MemObject>,
    stats: &mut PromotionStats,
) {
    let stale: Vec<MemObject> = cached
        .iter()
        .filter(|(o, v)| v.reg == redefined && Some(**o) != keep)
        .map(|(o, _)| *o)
        .collect();
    for obj in stale {
        let entry = cached.remove(&obj).expect("key collected above");
        if entry.dirty {
            // Undo one coalescing credit: the value must hit memory after
            // all, before the register is clobbered.
            stats.stores_eliminated = stats.stores_eliminated.saturating_sub(1);
            let pos = new.len() - 1;
            new.insert(
                pos,
                Instr::Store {
                    src: entry.reg,
                    mem: MemRef::scalar(obj),
                },
            );
        }
    }
}

/// Loop-level promotion of unambiguous scalars.
///
/// For each natural loop containing no calls and no pointer dereferences,
/// every unambiguous scalar referenced inside is loaded into a register in a
/// freshly-created preheader, all in-loop accesses become register
/// copies, and the value is stored back on each exit edge. This is the
/// register half of the unified model working at live-range granularity
/// (paper §4.2 rule 1: "when a register will be used for a series of
/// operations, the loading and storing of the value into a register should
/// bypass the cache") — the preheader load and exit stores become the rare
/// `UmAm_LOAD`/`UmAm_STORE` boundary traffic that makes bypass profitable.
///
/// Returns the number of (loop, scalar) pairs promoted.
pub fn promote_loops(module: &mut Module) -> usize {
    let mut promoted = 0;
    for fid_idx in 0..module.funcs.len() {
        let fid = FuncId::from_index(fid_idx);
        // Headers already processed (block ids of original blocks survive
        // rewriting; new blocks are appended).
        let mut done: std::collections::HashSet<ucm_ir::BlockId> = std::collections::HashSet::new();
        loop {
            // Recompute analyses after each rewrite: the CFG changed.
            let classification = Classification::compute(module);
            let func = module.func(fid);
            let cfg = ucm_ir::Cfg::new(func);
            let dom = ucm_analysis::Dominators::compute(func, &cfg);
            let loops = ucm_analysis::LoopInfo::compute(func, &cfg, &dom);
            // Outermost (largest) candidate first.
            let mut candidates: Vec<&ucm_analysis::NaturalLoop> = loops
                .loops
                .iter()
                .filter(|l| !done.contains(&l.header))
                .collect();
            candidates.sort_by_key(|l| std::cmp::Reverse(l.blocks.len()));
            let Some(target) = candidates.first() else {
                break;
            };
            let header = target.header;
            let blocks: std::collections::HashSet<ucm_ir::BlockId> =
                target.blocks.iter().copied().collect();
            done.insert(header);
            promoted += promote_one_loop(module, fid, header, &blocks, &cfg, &classification);
        }
    }
    promoted
}

/// Attempts promotion for one loop; returns how many scalars were promoted.
fn promote_one_loop(
    module: &mut Module,
    fid: FuncId,
    header: ucm_ir::BlockId,
    blocks: &std::collections::HashSet<ucm_ir::BlockId>,
    cfg: &ucm_ir::Cfg,
    classification: &Classification,
) -> usize {
    use ucm_ir::Terminator;
    // Eligibility: no calls, no dereferences anywhere in the loop.
    let func = module.func(fid);
    let mut candidates: Vec<MemObject> = Vec::new();
    let mut stored: std::collections::HashSet<MemObject> = std::collections::HashSet::new();
    for &bid in blocks {
        for (idx, instr) in func.block(bid).instrs.iter().enumerate() {
            match instr {
                Instr::Call { .. } => return 0,
                Instr::Load { mem, .. } | Instr::Store { mem, .. } => match mem.name {
                    RefName::Deref(_) => return 0,
                    RefName::Scalar(obj) => {
                        let iref = InstrRef::new(bid, idx);
                        if classification.get(fid, iref) == Some(RefClass::Unambiguous) {
                            candidates.push(obj);
                            if matches!(instr, Instr::Store { .. }) {
                                stored.insert(obj);
                            }
                        } else {
                            // An aliased scalar inside the loop could be a
                            // true alias of a candidate; bail out.
                            return 0;
                        }
                    }
                    _ => {}
                },
                _ => {}
            }
        }
    }
    candidates.sort_unstable();
    candidates.dedup();
    if candidates.is_empty() {
        return 0;
    }

    // One register per promoted scalar.
    let regs: HashMap<MemObject, VReg> = candidates
        .iter()
        .map(|&obj| (obj, module.func_mut(fid).new_vreg()))
        .collect();

    // Preheader: loads, then jump to the header. Redirect every entry edge
    // from outside the loop.
    let preheader = module.func_mut(fid).new_block();
    {
        let f = module.func_mut(fid);
        for &obj in &candidates {
            let dst = regs[&obj];
            f.block_mut(preheader).instrs.push(Instr::Load {
                dst,
                mem: MemRef::scalar(obj),
            });
        }
        f.block_mut(preheader).term = Terminator::Jump(header);
        for pred in cfg.preds(header).to_vec() {
            if blocks.contains(&pred) {
                continue; // back edge
            }
            retarget(f.block_mut(pred), header, preheader);
        }
        if f.entry == header {
            f.entry = preheader;
        }
    }

    // Rewrite in-loop accesses to register copies.
    for &bid in blocks {
        let f = module.func_mut(fid);
        for instr in &mut f.block_mut(bid).instrs {
            match instr {
                Instr::Load { dst, mem } => {
                    if let RefName::Scalar(obj) = mem.name {
                        if let Some(&r) = regs.get(&obj) {
                            *instr = Instr::Copy { dst: *dst, src: r };
                        }
                    }
                }
                Instr::Store { src, mem } => {
                    if let RefName::Scalar(obj) = mem.name {
                        if let Some(&r) = regs.get(&obj) {
                            *instr = Instr::Copy { dst: r, src: *src };
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // Exit stubs: store every promoted scalar back on each exit edge.
    let mut exit_edges: Vec<(ucm_ir::BlockId, ucm_ir::BlockId)> = Vec::new();
    for &bid in blocks {
        for succ in module.func(fid).block(bid).term.successors() {
            if !blocks.contains(&succ) {
                exit_edges.push((bid, succ));
            }
        }
    }
    for (from, to) in exit_edges {
        let f = module.func_mut(fid);
        let stub = f.new_block();
        for &obj in &candidates {
            // Read-only scalars need no store back.
            if stored.contains(&obj) {
                f.block_mut(stub).instrs.push(Instr::Store {
                    src: regs[&obj],
                    mem: MemRef::scalar(obj),
                });
            }
        }
        f.block_mut(stub).term = Terminator::Jump(to);
        retarget(f.block_mut(from), to, stub);
    }
    candidates.len()
}

/// Replaces terminator target `from` with `to`.
fn retarget(block: &mut ucm_ir::Block, from: ucm_ir::BlockId, to: ucm_ir::BlockId) {
    use ucm_ir::Terminator;
    match &mut block.term {
        Terminator::Jump(t) => {
            if *t == from {
                *t = to;
            }
        }
        Terminator::Branch {
            if_true, if_false, ..
        } => {
            if *if_true == from {
                *if_true = to;
            }
            if *if_false == from {
                *if_false = to;
            }
        }
        Terminator::Return(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucm_ir::lower::{lower_with, LowerOptions};
    use ucm_ir::verify_module;
    use ucm_lang::parse_and_check;

    fn promote_src(src: &str) -> (Module, PromotionStats) {
        let checked = parse_and_check(src).unwrap();
        let mut m = lower_with(
            &checked,
            &LowerOptions {
                promote_scalars: false,
            },
        )
        .unwrap();
        let stats = promote_locals(&mut m);
        verify_module(&m).unwrap();
        (m, stats)
    }

    fn run_module(m: &Module) -> Vec<i64> {
        let compiled = crate::pipeline::compile_module(
            m.clone(),
            &crate::pipeline::CompilerOptions::default(),
        )
        .unwrap();
        ucm_machine::run(
            &compiled.program,
            &mut ucm_machine::NullSink,
            &ucm_machine::VmConfig::default(),
        )
        .unwrap()
        .output
    }

    #[test]
    fn eliminates_redundant_scalar_loads() {
        let (m, stats) = promote_src("fn main() { let x: int = 3; print(x + x * x); }");
        assert!(stats.loads_eliminated >= 2, "x loaded once, reused");
        assert_eq!(run_module(&m), vec![12]);
    }

    #[test]
    fn coalesces_repeated_stores() {
        let (m, stats) = promote_src("fn main() { let x: int = 1; x = 2; x = 3; print(x); }");
        assert!(stats.stores_eliminated >= 2);
        assert_eq!(run_module(&m), vec![3]);
    }

    #[test]
    fn value_survives_across_blocks_via_memory() {
        let (m, _) = promote_src(
            "fn main() { let x: int = 0; let i: int = 0; \
             while i < 5 { x = x + i; i = i + 1; } print(x); }",
        );
        assert_eq!(run_module(&m), vec![10]);
    }

    #[test]
    fn calls_flush_dirty_scalars() {
        let (m, _) = promote_src(
            "global g: int; \
             fn bump() { g = g + 1; } \
             fn main() { g = 10; bump(); print(g); }",
        );
        assert_eq!(run_module(&m), vec![11]);
    }

    #[test]
    fn true_alias_deref_sees_promoted_value() {
        let (m, _) = promote_src(
            "fn main() { let x: int = 1; let p: *int = &x; \
             x = 5; print(*p); *p = 9; print(x); }",
        );
        assert_eq!(run_module(&m), vec![5, 9]);
    }

    #[test]
    fn arrays_are_untouched() {
        let (m, stats) = promote_src("global a: [int; 4]; fn main() { a[0] = 7; print(a[0]); }");
        let _ = stats;
        assert_eq!(run_module(&m), vec![7]);
        // The array store and load both remain.
        let mems = m
            .func(m.main)
            .instrs()
            .filter(|(_, i)| {
                i.mem()
                    .is_some_and(|mm| matches!(mm.name, RefName::Elem(_)))
            })
            .count();
        assert_eq!(mems, 2);
    }

    #[test]
    fn workload_outputs_preserved() {
        for w in ucm_workloads_like_sources() {
            let checked = parse_and_check(&w.0).unwrap();
            let mut m = lower_with(
                &checked,
                &LowerOptions {
                    promote_scalars: false,
                },
            )
            .unwrap();
            promote_locals(&mut m);
            verify_module(&m).unwrap();
            assert_eq!(run_module(&m), w.1, "promotion must not change results");
        }
    }

    fn loop_promote_src(src: &str) -> (Module, usize) {
        let checked = parse_and_check(src).unwrap();
        let mut m = lower_with(
            &checked,
            &LowerOptions {
                promote_scalars: false,
            },
        )
        .unwrap();
        let n = promote_loops(&mut m);
        verify_module(&m).unwrap();
        (m, n)
    }

    #[test]
    fn loop_promotion_registers_hot_globals() {
        let (m, n) = loop_promote_src(
            "global sum: int; \
             fn main() { let i: int = 0; \
               while i < 100 { sum = sum + i; i = i + 1; } print(sum); }",
        );
        assert!(n >= 2, "sum and i both promoted, got {n}");
        assert_eq!(run_module(&m), vec![4950]);
        // No scalar memory traffic inside the loop blocks any more: total
        // scalar refs shrink to preheader loads + exit stores + prints.
        let scalar_refs = m
            .func(m.main)
            .instrs()
            .filter(|(_, i)| {
                i.mem()
                    .is_some_and(|mm| matches!(mm.name, RefName::Scalar(_)))
            })
            .count();
        assert!(
            scalar_refs <= 8,
            "boundary traffic only, found {scalar_refs} scalar refs"
        );
    }

    #[test]
    fn loop_promotion_skips_loops_with_calls() {
        let (m, _) = loop_promote_src(
            "global g: int; \
             fn bump() { g = g + 1; } \
             fn main() { let i: int = 0; \
               while i < 5 { bump(); i = i + 1; } print(g); }",
        );
        assert_eq!(run_module(&m), vec![5]);
    }

    #[test]
    fn loop_promotion_skips_loops_with_derefs() {
        let (m, _) = loop_promote_src(
            "fn main() { let x: int = 0; let p: *int = &x; let i: int = 0; \
               while i < 5 { *p = *p + i; i = i + 1; } print(x); }",
        );
        assert_eq!(run_module(&m), vec![10]);
    }

    #[test]
    fn loop_promotion_handles_break_exits() {
        let (m, n) = loop_promote_src(
            "global acc: int; \
             fn main() { let i: int = 0; \
               while 1 { acc = acc + i; if i == 9 { break; } i = i + 1; } \
               print(acc); }",
        );
        assert!(n >= 1);
        assert_eq!(run_module(&m), vec![45]);
    }

    #[test]
    fn loop_promotion_nested_loops() {
        let (m, _) = loop_promote_src(
            "global total: int; \
             fn main() { let i: int = 0; let j: int = 0; \
               while i < 4 { j = 0; \
                 while j < 4 { total = total + i * j; j = j + 1; } \
                 i = i + 1; } \
               print(total); }",
        );
        assert_eq!(run_module(&m), vec![36]);
    }

    #[test]
    fn loop_promotion_entry_header() {
        // The loop header is reached straight from the function entry.
        let (m, _) = loop_promote_src(
            "global n: int = 10; \
             fn main() { while n > 0 { n = n - 1; } print(n); }",
        );
        assert_eq!(run_module(&m), vec![0]);
    }

    /// A couple of miniature but branchy/loopy programs with expected output.
    fn ucm_workloads_like_sources() -> Vec<(String, Vec<i64>)> {
        vec![
            (
                "global a: [int; 10]; global s: int; \
                 fn main() { let i: int = 0; \
                   while i < 10 { a[i] = i * i; i = i + 1; } \
                   i = 0; while i < 10 { s = s + a[i]; i = i + 1; } print(s); }"
                    .into(),
                vec![285],
            ),
            (
                "fn fib(n: int) -> int { if n < 2 { return n; } \
                   return fib(n - 1) + fib(n - 2); } \
                 fn main() { print(fib(10)); }"
                    .into(),
                vec![55],
            ),
        ]
    }
}
