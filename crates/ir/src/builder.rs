//! Convenience builder for constructing IR functions.

use crate::func::{Function, SlotKind};
use crate::ids::{BlockId, FuncId, SlotId, VReg};
use crate::instr::{Instr, OpCode, Operand, Terminator};
use crate::mem::{MemObject, MemRef};

/// Incrementally builds one [`Function`].
///
/// The builder maintains a *current block*; instruction helpers append to it.
/// Once a block is terminated, further instructions open a fresh
/// (unreachable) block, which mirrors how dead code after `return` behaves.
///
/// # Example
///
/// ```rust
/// use ucm_ir::builder::Builder;
/// use ucm_ir::instr::OpCode;
///
/// let mut b = Builder::new("add2", true);
/// let x = b.param();
/// let r = b.binary(OpCode::Add, x, 2);
/// b.ret(Some(r));
/// let f = b.finish();
/// assert_eq!(f.name, "add2");
/// assert_eq!(f.instr_count(), 1);
/// ```
#[derive(Debug)]
pub struct Builder {
    func: Function,
    cur: BlockId,
    terminated: Vec<bool>,
}

impl Builder {
    /// Starts building a function.
    pub fn new(name: impl Into<String>, returns_value: bool) -> Self {
        let func = Function::new(name, returns_value);
        Builder {
            cur: func.entry,
            terminated: vec![false],
            func,
        }
    }

    /// Declares the next parameter and returns its register.
    pub fn param(&mut self) -> VReg {
        let v = self.func.new_vreg();
        self.func.params.push(v);
        v
    }

    /// Allocates a fresh virtual register.
    pub fn vreg(&mut self) -> VReg {
        self.func.new_vreg()
    }

    /// Allocates a new block (does not switch to it).
    pub fn block(&mut self) -> BlockId {
        let b = self.func.new_block();
        self.terminated.push(false);
        b
    }

    /// Makes `b` the current block.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    /// The current block.
    pub fn current(&self) -> BlockId {
        self.cur
    }

    /// Adds a frame slot.
    pub fn slot(&mut self, name: impl Into<String>, words: usize, kind: SlotKind) -> SlotId {
        self.func.new_slot(name, words, kind)
    }

    /// Appends `instr` to the current block (opening a fresh block first if
    /// the current one is already terminated).
    pub fn emit(&mut self, instr: Instr) {
        if self.terminated[self.cur.index()] {
            let b = self.block();
            self.cur = b;
        }
        self.func.block_mut(self.cur).instrs.push(instr);
    }

    /// Emits `dst = const value` and returns `dst`.
    pub fn const_(&mut self, value: i64) -> VReg {
        let dst = self.vreg();
        self.emit(Instr::Const { dst, value });
        dst
    }

    /// Emits `dst = src` and returns `dst`.
    pub fn copy(&mut self, src: VReg) -> VReg {
        let dst = self.vreg();
        self.emit(Instr::Copy { dst, src });
        dst
    }

    /// Emits a copy into an existing register.
    pub fn copy_to(&mut self, dst: VReg, src: VReg) {
        self.emit(Instr::Copy { dst, src });
    }

    /// Emits `dst = op lhs rhs` and returns `dst`.
    pub fn binary(&mut self, op: OpCode, lhs: VReg, rhs: impl Into<Operand>) -> VReg {
        let dst = self.vreg();
        self.emit(Instr::Binary {
            dst,
            op,
            lhs,
            rhs: rhs.into(),
        });
        dst
    }

    /// Emits `dst = -src` and returns `dst`.
    pub fn neg(&mut self, src: VReg) -> VReg {
        let dst = self.vreg();
        self.emit(Instr::Neg { dst, src });
        dst
    }

    /// Emits `dst = !src` (logical) and returns `dst`.
    pub fn not(&mut self, src: VReg) -> VReg {
        let dst = self.vreg();
        self.emit(Instr::Not { dst, src });
        dst
    }

    /// Emits `dst = &object` and returns `dst`.
    pub fn addr_of(&mut self, object: MemObject) -> VReg {
        let dst = self.vreg();
        self.emit(Instr::AddrOf { dst, object });
        dst
    }

    /// Emits a load and returns the destination register.
    pub fn load(&mut self, mem: MemRef) -> VReg {
        let dst = self.vreg();
        self.emit(Instr::Load { dst, mem });
        dst
    }

    /// Emits a store.
    pub fn store(&mut self, src: VReg, mem: MemRef) {
        self.emit(Instr::Store { src, mem });
    }

    /// Emits a call; returns the result register if `returns_value`.
    pub fn call(&mut self, callee: FuncId, args: Vec<VReg>, returns_value: bool) -> Option<VReg> {
        let dst = returns_value.then(|| self.vreg());
        self.emit(Instr::Call { dst, callee, args });
        dst
    }

    /// Emits `print src`.
    pub fn print(&mut self, src: VReg) {
        self.emit(Instr::Print { src });
    }

    fn terminate(&mut self, term: Terminator) {
        if self.terminated[self.cur.index()] {
            // Unreachable terminator (e.g. `break; continue;`): park it in a
            // fresh dead block so the reachable CFG stays intact.
            let b = self.block();
            self.cur = b;
        }
        self.func.block_mut(self.cur).term = term;
        self.terminated[self.cur.index()] = true;
    }

    /// Terminates the current block with an unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        self.terminate(Terminator::Jump(target));
    }

    /// Terminates the current block with a conditional branch.
    pub fn branch(&mut self, cond: VReg, if_true: BlockId, if_false: BlockId) {
        self.terminate(Terminator::Branch {
            cond,
            if_true,
            if_false,
        });
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, value: Option<VReg>) {
        self.terminate(Terminator::Return(value));
    }

    /// Whether the current block already has a terminator.
    pub fn is_terminated(&self) -> bool {
        self.terminated[self.cur.index()]
    }

    /// Finishes the function. Unterminated blocks fall back to `return`
    /// (with a zero value for value-returning functions, matching Mini's
    /// "missing return yields 0" rule).
    pub fn finish(mut self) -> Function {
        for i in 0..self.func.blocks.len() {
            if !self.terminated[i] {
                if self.func.returns_value {
                    let b = BlockId::from_index(i);
                    let dst = self.func.new_vreg();
                    self.func
                        .block_mut(b)
                        .instrs
                        .push(Instr::Const { dst, value: 0 });
                    self.func.block_mut(b).term = Terminator::Return(Some(dst));
                } else {
                    self.func.blocks[i].term = Terminator::Return(None);
                }
            }
        }
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_straightline_function() {
        let mut b = Builder::new("f", true);
        let x = b.param();
        let y = b.binary(OpCode::Mul, x, x);
        b.ret(Some(y));
        let f = b.finish();
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.instr_count(), 1);
        assert_eq!(f.block(f.entry).term, Terminator::Return(Some(y)));
    }

    #[test]
    fn builds_diamond() {
        let mut b = Builder::new("f", false);
        let c = b.const_(1);
        let t = b.block();
        let e = b.block();
        let j = b.block();
        b.branch(c, t, e);
        b.switch_to(t);
        let v = b.const_(10);
        b.print(v);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        let f = b.finish();
        assert_eq!(f.blocks.len(), 4);
        assert_eq!(f.block(f.entry).term.successors(), vec![t, e]);
    }

    #[test]
    fn code_after_terminator_goes_to_dead_block() {
        let mut b = Builder::new("f", false);
        b.ret(None);
        let v = b.const_(5);
        b.print(v);
        let f = b.finish();
        // The entry block holds only the return; dead code landed elsewhere.
        assert!(f.block(f.entry).instrs.is_empty());
        assert_eq!(f.instr_count(), 2);
    }

    #[test]
    fn double_terminator_does_not_overwrite() {
        let mut b = Builder::new("f", false);
        let target = b.block();
        b.jump(target);
        b.ret(None); // dead terminator
        let f = b.finish();
        assert_eq!(f.block(f.entry).term, Terminator::Jump(target));
    }

    #[test]
    fn finish_seals_value_returning_function_with_zero() {
        let b = Builder::new("f", true);
        let f = b.finish();
        match &f.block(f.entry).term {
            Terminator::Return(Some(v)) => {
                assert!(matches!(
                    f.block(f.entry).instrs.last(),
                    Some(Instr::Const { dst, value: 0 }) if dst == v
                ));
            }
            other => panic!("expected return of zero, got {other:?}"),
        }
    }
}
