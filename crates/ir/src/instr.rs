//! IR instructions and terminators.

use crate::ids::{BlockId, FuncId, VReg};
use crate::mem::MemRef;
use std::fmt;

/// A scalar binary operation. `&&`/`||` do not appear: the front end lowers
/// them to control flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpCode {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Truncating division; the VM traps on a zero divisor.
    Div,
    /// Remainder; the VM traps on a zero divisor.
    Rem,
    /// Equality (yields 0/1).
    Eq,
    /// Inequality (yields 0/1).
    Ne,
    /// Signed less-than (yields 0/1).
    Lt,
    /// Signed less-or-equal (yields 0/1).
    Le,
    /// Signed greater-than (yields 0/1).
    Gt,
    /// Signed greater-or-equal (yields 0/1).
    Ge,
}

impl OpCode {
    /// Evaluates the operation on constants, as the VM would.
    ///
    /// Returns `None` for division/remainder by zero.
    pub fn eval(self, a: i64, b: i64) -> Option<i64> {
        Some(match self {
            OpCode::Add => a.wrapping_add(b),
            OpCode::Sub => a.wrapping_sub(b),
            OpCode::Mul => a.wrapping_mul(b),
            OpCode::Div => {
                if b == 0 {
                    return None;
                }
                a.wrapping_div(b)
            }
            OpCode::Rem => {
                if b == 0 {
                    return None;
                }
                a.wrapping_rem(b)
            }
            OpCode::Eq => i64::from(a == b),
            OpCode::Ne => i64::from(a != b),
            OpCode::Lt => i64::from(a < b),
            OpCode::Le => i64::from(a <= b),
            OpCode::Gt => i64::from(a > b),
            OpCode::Ge => i64::from(a >= b),
        })
    }
}

impl fmt::Display for OpCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpCode::Add => "add",
            OpCode::Sub => "sub",
            OpCode::Mul => "mul",
            OpCode::Div => "div",
            OpCode::Rem => "rem",
            OpCode::Eq => "eq",
            OpCode::Ne => "ne",
            OpCode::Lt => "lt",
            OpCode::Le => "le",
            OpCode::Gt => "gt",
            OpCode::Ge => "ge",
        };
        write!(f, "{s}")
    }
}

/// A right-hand operand: register or immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A virtual register.
    Reg(VReg),
    /// An immediate constant.
    Imm(i64),
}

impl Operand {
    /// The register, if this operand is one.
    pub fn as_reg(&self) -> Option<VReg> {
        match self {
            Operand::Reg(v) => Some(*v),
            Operand::Imm(_) => None,
        }
    }
}

impl From<VReg> for Operand {
    fn from(v: VReg) -> Self {
        Operand::Reg(v)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(v) => write!(f, "{v}"),
            Operand::Imm(i) => write!(f, "{i}"),
        }
    }
}

/// A non-terminator IR instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// `dst = value`
    Const {
        /// Destination register.
        dst: VReg,
        /// Constant value.
        value: i64,
    },
    /// `dst = src`
    Copy {
        /// Destination register.
        dst: VReg,
        /// Source register.
        src: VReg,
    },
    /// `dst = op lhs rhs`
    Binary {
        /// Destination register.
        dst: VReg,
        /// Operation.
        op: OpCode,
        /// Left operand.
        lhs: VReg,
        /// Right operand (register or immediate).
        rhs: Operand,
    },
    /// `dst = -src`
    Neg {
        /// Destination register.
        dst: VReg,
        /// Source register.
        src: VReg,
    },
    /// `dst = (src == 0) ? 1 : 0`
    Not {
        /// Destination register.
        dst: VReg,
        /// Source register.
        src: VReg,
    },
    /// `dst = &object` — materializes the address of a global or frame slot.
    AddrOf {
        /// Destination register.
        dst: VReg,
        /// The object whose address is taken.
        object: crate::mem::MemObject,
    },
    /// `dst = load mem` — a data memory read.
    Load {
        /// Destination register.
        dst: VReg,
        /// Address + aliased-object name.
        mem: MemRef,
    },
    /// `store src -> mem` — a data memory write.
    Store {
        /// Value to store.
        src: VReg,
        /// Address + aliased-object name.
        mem: MemRef,
    },
    /// `dst = call callee(args...)`
    Call {
        /// Destination register, if the callee returns a value *and* the
        /// result is used.
        dst: Option<VReg>,
        /// The called function.
        callee: FuncId,
        /// Argument registers, in order.
        args: Vec<VReg>,
    },
    /// `print src` — appends one integer to the program output.
    Print {
        /// Value to print.
        src: VReg,
    },
}

impl Instr {
    /// The register this instruction defines, if any.
    pub fn def(&self) -> Option<VReg> {
        match self {
            Instr::Const { dst, .. }
            | Instr::Copy { dst, .. }
            | Instr::Binary { dst, .. }
            | Instr::Neg { dst, .. }
            | Instr::Not { dst, .. }
            | Instr::AddrOf { dst, .. }
            | Instr::Load { dst, .. } => Some(*dst),
            Instr::Call { dst, .. } => *dst,
            Instr::Store { .. } | Instr::Print { .. } => None,
        }
    }

    /// Appends the registers this instruction uses to `out`.
    pub fn uses_into(&self, out: &mut Vec<VReg>) {
        match self {
            Instr::Const { .. } | Instr::AddrOf { .. } => {}
            Instr::Copy { src, .. } | Instr::Neg { src, .. } | Instr::Not { src, .. } => {
                out.push(*src)
            }
            Instr::Binary { lhs, rhs, .. } => {
                out.push(*lhs);
                if let Operand::Reg(r) = rhs {
                    out.push(*r);
                }
            }
            Instr::Load { mem, .. } => {
                if let Some(r) = mem.addr_reg() {
                    out.push(r);
                }
            }
            Instr::Store { src, mem } => {
                out.push(*src);
                if let Some(r) = mem.addr_reg() {
                    out.push(r);
                }
            }
            Instr::Call { args, .. } => out.extend_from_slice(args),
            Instr::Print { src } => out.push(*src),
        }
    }

    /// The registers this instruction uses.
    pub fn uses(&self) -> Vec<VReg> {
        let mut out = Vec::new();
        self.uses_into(&mut out);
        out
    }

    /// The memory reference, if this is a load or store.
    pub fn mem(&self) -> Option<&MemRef> {
        match self {
            Instr::Load { mem, .. } | Instr::Store { mem, .. } => Some(mem),
            _ => None,
        }
    }

    /// Returns `true` for loads and stores.
    pub fn is_memory(&self) -> bool {
        self.mem().is_some()
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Const { dst, value } => write!(f, "{dst} = const {value}"),
            Instr::Copy { dst, src } => write!(f, "{dst} = {src}"),
            Instr::Binary { dst, op, lhs, rhs } => write!(f, "{dst} = {op} {lhs}, {rhs}"),
            Instr::Neg { dst, src } => write!(f, "{dst} = neg {src}"),
            Instr::Not { dst, src } => write!(f, "{dst} = not {src}"),
            Instr::AddrOf { dst, object } => write!(f, "{dst} = addr {object}"),
            Instr::Load { dst, mem } => write!(f, "{dst} = load {mem}"),
            Instr::Store { src, mem } => write!(f, "store {src} -> {mem}"),
            Instr::Call { dst, callee, args } => {
                if let Some(dst) = dst {
                    write!(f, "{dst} = call {callee}(")?;
                } else {
                    write!(f, "call {callee}(")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Instr::Print { src } => write!(f, "print {src}"),
        }
    }
}

/// A block terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on `cond != 0`.
    Branch {
        /// Condition register.
        cond: VReg,
        /// Target when `cond != 0`.
        if_true: BlockId,
        /// Target when `cond == 0`.
        if_false: BlockId,
    },
    /// Function return, with optional value.
    Return(Option<VReg>),
}

impl Terminator {
    /// Successor blocks, in branch order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch {
                if_true, if_false, ..
            } => vec![*if_true, *if_false],
            Terminator::Return(_) => vec![],
        }
    }

    /// Registers used by the terminator.
    pub fn uses(&self) -> Vec<VReg> {
        match self {
            Terminator::Jump(_) => vec![],
            Terminator::Branch { cond, .. } => vec![*cond],
            Terminator::Return(Some(v)) => vec![*v],
            Terminator::Return(None) => vec![],
        }
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Jump(b) => write!(f, "jump {b}"),
            Terminator::Branch {
                cond,
                if_true,
                if_false,
            } => write!(f, "branch {cond} ? {if_true} : {if_false}"),
            Terminator::Return(Some(v)) => write!(f, "return {v}"),
            Terminator::Return(None) => write!(f, "return"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{GlobalId, SlotId};
    use crate::mem::{MemObject, MemRef};

    #[test]
    fn opcode_eval_matches_semantics() {
        assert_eq!(OpCode::Add.eval(2, 3), Some(5));
        assert_eq!(OpCode::Sub.eval(2, 3), Some(-1));
        assert_eq!(OpCode::Mul.eval(-4, 3), Some(-12));
        assert_eq!(OpCode::Div.eval(7, 2), Some(3));
        assert_eq!(OpCode::Div.eval(-7, 2), Some(-3));
        assert_eq!(OpCode::Rem.eval(7, 2), Some(1));
        assert_eq!(OpCode::Rem.eval(-7, 2), Some(-1));
        assert_eq!(OpCode::Div.eval(1, 0), None);
        assert_eq!(OpCode::Rem.eval(1, 0), None);
        assert_eq!(OpCode::Lt.eval(1, 2), Some(1));
        assert_eq!(OpCode::Ge.eval(1, 2), Some(0));
        assert_eq!(OpCode::Add.eval(i64::MAX, 1), Some(i64::MIN));
    }

    #[test]
    fn defs_and_uses() {
        let v = |n| VReg(n);
        let i = Instr::Binary {
            dst: v(0),
            op: OpCode::Add,
            lhs: v(1),
            rhs: Operand::Reg(v(2)),
        };
        assert_eq!(i.def(), Some(v(0)));
        assert_eq!(i.uses(), vec![v(1), v(2)]);

        let i = Instr::Binary {
            dst: v(0),
            op: OpCode::Add,
            lhs: v(1),
            rhs: Operand::Imm(5),
        };
        assert_eq!(i.uses(), vec![v(1)]);

        let st = Instr::Store {
            src: v(3),
            mem: MemRef::elem(v(4), MemObject::Global(GlobalId(0))),
        };
        assert_eq!(st.def(), None);
        assert_eq!(st.uses(), vec![v(3), v(4)]);
        assert!(st.is_memory());

        let ld = Instr::Load {
            dst: v(5),
            mem: MemRef::spill(SlotId(0)),
        };
        assert_eq!(ld.def(), Some(v(5)));
        assert!(ld.uses().is_empty());

        let call = Instr::Call {
            dst: Some(v(6)),
            callee: FuncId(0),
            args: vec![v(7), v(8)],
        };
        assert_eq!(call.def(), Some(v(6)));
        assert_eq!(call.uses(), vec![v(7), v(8)]);
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Jump(BlockId(3)).successors(), vec![BlockId(3)]);
        let b = Terminator::Branch {
            cond: VReg(0),
            if_true: BlockId(1),
            if_false: BlockId(2),
        };
        assert_eq!(b.successors(), vec![BlockId(1), BlockId(2)]);
        assert_eq!(b.uses(), vec![VReg(0)]);
        assert!(Terminator::Return(None).successors().is_empty());
        assert_eq!(Terminator::Return(Some(VReg(9))).uses(), vec![VReg(9)]);
    }

    #[test]
    fn operand_conversions() {
        let o: Operand = VReg(3).into();
        assert_eq!(o.as_reg(), Some(VReg(3)));
        let o: Operand = 42i64.into();
        assert_eq!(o.as_reg(), None);
        assert_eq!(o.to_string(), "42");
    }

    #[test]
    fn display_formats() {
        let i = Instr::Load {
            dst: VReg(1),
            mem: MemRef::scalar(MemObject::Global(GlobalId(2))),
        };
        assert_eq!(i.to_string(), "v1 = load &g2 (scalar g2)");
    }
}
