//! Modules and global variables.

use crate::func::Function;
use crate::ids::{FuncId, GlobalId};

/// A module-level variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalVar {
    /// Source name.
    pub name: String,
    /// Size in words (1 for scalars).
    pub words: usize,
    /// `true` for word-sized scalars (register-promotable), `false` for
    /// arrays.
    pub is_scalar: bool,
    /// Initial value of word 0 (scalars only; arrays are zero-filled).
    pub init: i64,
}

/// A whole program in IR form.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Module {
    /// Global variables, indexed by [`GlobalId`].
    pub globals: Vec<GlobalVar>,
    /// Functions, indexed by [`FuncId`].
    pub funcs: Vec<Function>,
    /// The entry function (`main`).
    pub main: FuncId,
}

impl Module {
    /// Shared access to a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (caller bug).
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// Mutable access to a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (caller bug).
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.index()]
    }

    /// Shared access to a global.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (caller bug).
    pub fn global(&self, id: GlobalId) -> &GlobalVar {
        &self.globals[id.index()]
    }

    /// Iterates over all function ids.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> + '_ {
        (0..self.funcs.len()).map(FuncId::from_index)
    }

    /// Total size of the global data segment in words.
    pub fn globals_words(&self) -> usize {
        self.globals.iter().map(|g| g.words).sum()
    }

    /// Looks up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(FuncId::from_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_sizes() {
        let mut m = Module::default();
        m.globals.push(GlobalVar {
            name: "x".into(),
            words: 1,
            is_scalar: true,
            init: 7,
        });
        m.globals.push(GlobalVar {
            name: "a".into(),
            words: 100,
            is_scalar: false,
            init: 0,
        });
        m.funcs.push(Function::new("main", false));
        assert_eq!(m.globals_words(), 101);
        assert_eq!(m.func_by_name("main"), Some(FuncId(0)));
        assert_eq!(m.func_by_name("nope"), None);
        assert_eq!(m.global(GlobalId(0)).init, 7);
        assert_eq!(m.func_ids().count(), 1);
    }
}
