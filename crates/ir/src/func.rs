//! Functions, basic blocks, and frame slots.

use crate::ids::{BlockId, InstrRef, SlotId, VReg};
use crate::instr::{Instr, Terminator};

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Instructions in execution order.
    pub instrs: Vec<Instr>,
    /// The terminator; [`Terminator::Return`] with no value until sealed.
    pub term: Terminator,
}

impl Block {
    /// An empty block ending in a bare return (builder replaces it).
    pub fn new() -> Self {
        Block {
            instrs: Vec::new(),
            term: Terminator::Return(None),
        }
    }
}

impl Default for Block {
    fn default() -> Self {
        Block::new()
    }
}

/// What a frame slot holds; drives alias classification and frame layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotKind {
    /// An address-taken scalar local or parameter.
    Scalar,
    /// A local array.
    Array,
    /// A register-allocator spill slot (always unambiguous).
    Spill,
    /// A caller-save slot used to preserve a register across a call
    /// (always unambiguous).
    CallerSave,
}

/// One stack-frame slot group (1 word for scalars/spills, N for arrays).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameSlot {
    /// Debug name.
    pub name: String,
    /// Size in words.
    pub words: usize,
    /// What the slot holds.
    pub kind: SlotKind,
}

/// A function: blocks, parameters, and frame layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name (unique within the module).
    pub name: String,
    /// Registers holding the incoming parameters, in order.
    pub params: Vec<VReg>,
    /// Whether the function returns a value.
    pub returns_value: bool,
    /// Basic blocks, indexed by [`BlockId`].
    pub blocks: Vec<Block>,
    /// The entry block.
    pub entry: BlockId,
    /// Frame slots, indexed by [`SlotId`].
    pub frame: Vec<FrameSlot>,
    /// Number of virtual registers allocated so far.
    pub num_vregs: u32,
}

impl Function {
    /// Creates an empty function with a single entry block.
    pub fn new(name: impl Into<String>, returns_value: bool) -> Self {
        Function {
            name: name.into(),
            params: Vec::new(),
            returns_value,
            blocks: vec![Block::new()],
            entry: BlockId(0),
            frame: Vec::new(),
            num_vregs: 0,
        }
    }

    /// Allocates a fresh virtual register.
    pub fn new_vreg(&mut self) -> VReg {
        let v = VReg(self.num_vregs);
        self.num_vregs += 1;
        v
    }

    /// Allocates a new empty block and returns its id.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId::from_index(self.blocks.len());
        self.blocks.push(Block::new());
        id
    }

    /// Adds a frame slot, returning its id.
    pub fn new_slot(&mut self, name: impl Into<String>, words: usize, kind: SlotKind) -> SlotId {
        let id = SlotId::from_index(self.frame.len());
        self.frame.push(FrameSlot {
            name: name.into(),
            words,
            kind,
        });
        id
    }

    /// Shared access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (caller bug).
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (caller bug).
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Iterates over all block ids in index order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len()).map(BlockId::from_index)
    }

    /// Iterates over every instruction as `(InstrRef, &Instr)`.
    pub fn instrs(&self) -> impl Iterator<Item = (InstrRef, &Instr)> + '_ {
        self.block_ids().flat_map(move |bid| {
            self.block(bid)
                .instrs
                .iter()
                .enumerate()
                .map(move |(i, instr)| (InstrRef::new(bid, i), instr))
        })
    }

    /// The instruction at `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range (caller bug).
    pub fn instr(&self, r: InstrRef) -> &Instr {
        &self.block(r.block).instrs[r.index as usize]
    }

    /// Total instruction count (excluding terminators).
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// Total frame size in words.
    pub fn frame_words(&self) -> usize {
        self.frame.iter().map(|s| s.words).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;

    #[test]
    fn new_function_has_entry_block() {
        let f = Function::new("f", false);
        assert_eq!(f.entry, BlockId(0));
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.instr_count(), 0);
    }

    #[test]
    fn vreg_and_block_allocation() {
        let mut f = Function::new("f", true);
        assert_eq!(f.new_vreg(), VReg(0));
        assert_eq!(f.new_vreg(), VReg(1));
        let b = f.new_block();
        assert_eq!(b, BlockId(1));
        assert_eq!(f.blocks.len(), 2);
    }

    #[test]
    fn frame_slots_accumulate() {
        let mut f = Function::new("f", false);
        let a = f.new_slot("arr", 16, SlotKind::Array);
        let s = f.new_slot("x", 1, SlotKind::Scalar);
        assert_eq!(a, SlotId(0));
        assert_eq!(s, SlotId(1));
        assert_eq!(f.frame_words(), 17);
    }

    #[test]
    fn instr_iteration_covers_all_blocks() {
        let mut f = Function::new("f", false);
        let v = f.new_vreg();
        f.block_mut(BlockId(0))
            .instrs
            .push(Instr::Const { dst: v, value: 1 });
        let b1 = f.new_block();
        f.block_mut(b1).instrs.push(Instr::Print { src: v });
        let refs: Vec<_> = f.instrs().map(|(r, _)| r).collect();
        assert_eq!(refs.len(), 2);
        assert_eq!(refs[0], InstrRef::new(BlockId(0), 0));
        assert_eq!(refs[1], InstrRef::new(b1, 0));
        assert!(matches!(f.instr(refs[1]), Instr::Print { .. }));
    }
}
