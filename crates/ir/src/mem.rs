//! Symbolic memory references.
//!
//! Every IR load/store carries, besides the address computation, a *symbolic
//! name* ([`RefName`]) describing which object it may touch. This is the
//! "aliased-object name" of paper §4.1.1.1: the alias analysis groups these
//! names into alias sets and the unified-management pass classifies each
//! reference as ambiguous or unambiguous from them.

use crate::ids::{GlobalId, SlotId, VReg};
use std::fmt;

/// A statically known memory object: a global or a stack-frame slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemObject {
    /// A module global (scalar or array).
    Global(GlobalId),
    /// A frame slot of the enclosing function (local array, address-taken
    /// scalar, or spill slot).
    Frame(SlotId),
}

impl fmt::Display for MemObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemObject::Global(g) => write!(f, "{g}"),
            MemObject::Frame(s) => write!(f, "{s}"),
        }
    }
}

/// The aliased-object name of a memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RefName {
    /// A whole-scalar access to a known object (`x` where `x` is a scalar
    /// global or an address-taken scalar local).
    Scalar(MemObject),
    /// An element of a known array object (`a[i]`); which element is not
    /// statically known, so two `Elem` references to the same object are
    /// *sometimes aliases* (paper §4.1.2, alias type 3).
    Elem(MemObject),
    /// An access through a pointer held in `VReg`; resolved by the
    /// points-to analysis.
    Deref(VReg),
    /// A register-allocator spill slot. Spill slots are compiler-private and
    /// therefore always unambiguous.
    Spill(SlotId),
}

impl fmt::Display for RefName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefName::Scalar(o) => write!(f, "scalar {o}"),
            RefName::Elem(o) => write!(f, "elem {o}"),
            RefName::Deref(v) => write!(f, "*{v}"),
            RefName::Spill(s) => write!(f, "spill {s}"),
        }
    }
}

/// How the address of a memory access is obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemAddr {
    /// The address of a known object's first word (scalars: the scalar
    /// itself). Resolved to a constant (globals) or frame-relative offset
    /// (slots) by code generation.
    Object(MemObject),
    /// A computed address held in a register.
    Reg(VReg),
}

impl fmt::Display for MemAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemAddr::Object(o) => write!(f, "&{o}"),
            MemAddr::Reg(v) => write!(f, "[{v}]"),
        }
    }
}

/// A complete memory operand: address computation plus symbolic name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Where the access goes at run time.
    pub addr: MemAddr,
    /// What the access may touch, for alias analysis.
    pub name: RefName,
}

impl MemRef {
    /// A direct scalar access to `obj`.
    pub fn scalar(obj: MemObject) -> Self {
        MemRef {
            addr: MemAddr::Object(obj),
            name: RefName::Scalar(obj),
        }
    }

    /// An element access into array `obj` at a computed address.
    pub fn elem(addr: VReg, obj: MemObject) -> Self {
        MemRef {
            addr: MemAddr::Reg(addr),
            name: RefName::Elem(obj),
        }
    }

    /// An access through the pointer in `ptr`.
    ///
    /// `addr` may differ from `ptr` when the final address was computed from
    /// the pointer (e.g. `p[i]`); the *name* stays tied to the pointer value.
    pub fn deref(addr: VReg, ptr: VReg) -> Self {
        MemRef {
            addr: MemAddr::Reg(addr),
            name: RefName::Deref(ptr),
        }
    }

    /// A spill-slot access (register allocator internal).
    pub fn spill(slot: SlotId) -> Self {
        MemRef {
            addr: MemAddr::Object(MemObject::Frame(slot)),
            name: RefName::Spill(slot),
        }
    }

    /// The register the address lives in, if computed.
    pub fn addr_reg(&self) -> Option<VReg> {
        match self.addr {
            MemAddr::Reg(v) => Some(v),
            MemAddr::Object(_) => None,
        }
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.addr, self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_names() {
        let g = MemObject::Global(GlobalId(1));
        let m = MemRef::scalar(g);
        assert_eq!(m.addr, MemAddr::Object(g));
        assert_eq!(m.name, RefName::Scalar(g));
        assert_eq!(m.addr_reg(), None);

        let m = MemRef::elem(VReg(5), g);
        assert_eq!(m.addr_reg(), Some(VReg(5)));
        assert_eq!(m.name, RefName::Elem(g));

        let m = MemRef::deref(VReg(7), VReg(6));
        assert_eq!(m.addr_reg(), Some(VReg(7)));
        assert_eq!(m.name, RefName::Deref(VReg(6)));

        let m = MemRef::spill(SlotId(2));
        assert_eq!(m.name, RefName::Spill(SlotId(2)));
    }

    #[test]
    fn display_is_informative() {
        let g = MemObject::Global(GlobalId(0));
        assert_eq!(MemRef::scalar(g).to_string(), "&g0 (scalar g0)");
        assert_eq!(MemRef::elem(VReg(1), g).to_string(), "[v1] (elem g0)");
    }
}
