//! # ucm-ir — three-address IR with named memory references
//!
//! The intermediate representation for the reproduction of *Chi & Dietz,
//! PLDI 1989*. Its defining feature is that every load and store carries a
//! symbolic **aliased-object name** ([`mem::RefName`]) in addition to its
//! address computation, which is what the paper's alias-set construction
//! (§4.1) operates on.
//!
//! * [`lower::lower`] converts a checked Mini program into a [`module::Module`].
//! * [`builder::Builder`] constructs functions programmatically (tests, tools).
//! * [`cfg::Cfg`] provides successor/predecessor/RPO views.
//! * [`verify::verify_module`] checks structural invariants after each pass.
//!
//! ## Example
//!
//! ```rust
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let checked = ucm_lang::parse_and_check(
//!     "global a: [int; 4]; fn main() { a[0] = 1; print(a[0]); }",
//! )?;
//! let module = ucm_ir::lower(&checked)?;
//! ucm_ir::verify_module(&module)?;
//! println!("{}", ucm_ir::print::module_to_string(&module));
//! # Ok(())
//! # }
//! ```

pub mod builder;
pub mod cfg;
pub mod func;
pub mod ids;
pub mod instr;
pub mod lower;
pub mod mem;
pub mod module;
pub mod print;
pub mod verify;

pub use cfg::Cfg;
pub use func::{Block, FrameSlot, Function, SlotKind};
pub use ids::{BlockId, FuncId, GlobalId, InstrRef, SlotId, VReg};
pub use instr::{Instr, OpCode, Operand, Terminator};
pub use lower::{lower, lower_with, LowerError, LowerOptions};
pub use mem::{MemAddr, MemObject, MemRef, RefName};
pub use module::{GlobalVar, Module};
pub use verify::{verify_module, VerifyError};
