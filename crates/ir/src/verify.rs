//! IR well-formedness verifier.
//!
//! The verifier catches *compiler* bugs (bad ids, arity mismatches), not user
//! errors — the front end has already rejected those. It runs after lowering
//! and after every transforming pass in debug pipelines.

use crate::ids::FuncId;
use crate::instr::{Instr, Operand, Terminator};
use crate::mem::{MemAddr, MemObject, RefName};
use crate::module::Module;
use std::error::Error;
use std::fmt;

/// A verification failure: the function and a description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The offending function.
    pub func: String,
    /// What is malformed.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ir verification failed in `{}`: {}",
            self.func, self.message
        )
    }
}

impl Error for VerifyError {}

/// Verifies every function in `module`.
///
/// # Errors
///
/// Returns the first malformation found: out-of-range register, block, slot,
/// global or function ids; call arity/return mismatches; or a call result
/// register on a void callee.
pub fn verify_module(module: &Module) -> Result<(), VerifyError> {
    for f in module.func_ids() {
        verify_function(module, f)?;
    }
    Ok(())
}

/// Verifies a single function of `module`.
///
/// # Errors
///
/// See [`verify_module`].
pub fn verify_function(module: &Module, func: FuncId) -> Result<(), VerifyError> {
    let f = module.func(func);
    let err = |message: String| VerifyError {
        func: f.name.clone(),
        message,
    };
    let check_vreg = |v: crate::ids::VReg, what: &str| {
        if v.0 >= f.num_vregs {
            Err(err(format!("{what} uses unallocated register {v}")))
        } else {
            Ok(())
        }
    };
    let check_block = |b: crate::ids::BlockId| {
        if b.index() >= f.blocks.len() {
            Err(err(format!("jump to nonexistent block {b}")))
        } else {
            Ok(())
        }
    };
    let check_object = |o: &MemObject| match o {
        MemObject::Global(g) => {
            if g.index() >= module.globals.len() {
                Err(err(format!("reference to nonexistent global {g}")))
            } else {
                Ok(())
            }
        }
        MemObject::Frame(s) => {
            if s.index() >= f.frame.len() {
                Err(err(format!("reference to nonexistent frame slot {s}")))
            } else {
                Ok(())
            }
        }
    };

    for p in &f.params {
        check_vreg(*p, "parameter list")?;
    }

    for (iref, instr) in f.instrs() {
        let what = format!("{iref} `{instr}`");
        if let Some(d) = instr.def() {
            check_vreg(d, &what)?;
        }
        for u in instr.uses() {
            check_vreg(u, &what)?;
        }
        match instr {
            Instr::AddrOf { object, .. } => check_object(object)?,
            Instr::Load { mem, .. } | Instr::Store { mem, .. } => {
                if let MemAddr::Object(o) = &mem.addr {
                    check_object(o)?;
                }
                match &mem.name {
                    RefName::Scalar(o) | RefName::Elem(o) => check_object(o)?,
                    RefName::Spill(s) => check_object(&MemObject::Frame(*s))?,
                    RefName::Deref(v) => check_vreg(*v, &what)?,
                }
            }
            Instr::Binary {
                rhs: Operand::Reg(r),
                ..
            } => check_vreg(*r, &what)?,
            Instr::Call { dst, callee, args } => {
                if callee.index() >= module.funcs.len() {
                    return Err(err(format!("{what}: call to nonexistent {callee}")));
                }
                let target = module.func(*callee);
                if args.len() != target.params.len() {
                    return Err(err(format!(
                        "{what}: `{}` takes {} arguments, {} passed",
                        target.name,
                        target.params.len(),
                        args.len()
                    )));
                }
                if dst.is_some() && !target.returns_value {
                    return Err(err(format!(
                        "{what}: result register on call to void `{}`",
                        target.name
                    )));
                }
            }
            _ => {}
        }
    }

    for bid in f.block_ids() {
        match &f.block(bid).term {
            Terminator::Jump(t) => check_block(*t)?,
            Terminator::Branch {
                cond,
                if_true,
                if_false,
            } => {
                check_vreg(*cond, &format!("{bid} terminator"))?;
                check_block(*if_true)?;
                check_block(*if_false)?;
            }
            Terminator::Return(v) => {
                if let Some(v) = v {
                    check_vreg(*v, &format!("{bid} terminator"))?;
                    if !f.returns_value {
                        return Err(err(format!("{bid}: value returned from void function")));
                    }
                } else if f.returns_value {
                    return Err(err(format!(
                        "{bid}: bare return in value-returning function"
                    )));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::ids::{BlockId, VReg};
    use crate::instr::OpCode;

    fn module_with(f: crate::func::Function) -> Module {
        Module {
            funcs: vec![f],
            ..Module::default()
        }
    }

    #[test]
    fn accepts_well_formed_function() {
        let mut b = Builder::new("f", true);
        let x = b.param();
        let y = b.binary(OpCode::Add, x, 1);
        b.ret(Some(y));
        verify_module(&module_with(b.finish())).unwrap();
    }

    #[test]
    fn rejects_unallocated_register() {
        let mut f = crate::func::Function::new("f", false);
        f.block_mut(BlockId(0))
            .instrs
            .push(Instr::Print { src: VReg(99) });
        let e = verify_module(&module_with(f)).unwrap_err();
        assert!(e.message.contains("unallocated register"));
    }

    #[test]
    fn rejects_bad_block_target() {
        let mut f = crate::func::Function::new("f", false);
        f.block_mut(BlockId(0)).term = Terminator::Jump(BlockId(7));
        let e = verify_module(&module_with(f)).unwrap_err();
        assert!(e.message.contains("nonexistent block"));
    }

    #[test]
    fn rejects_call_arity_mismatch() {
        let mut callee = Builder::new("g", false);
        callee.param();
        let callee = callee.finish();
        let mut b = Builder::new("f", false);
        b.call(FuncId(1), vec![], false);
        b.ret(None);
        let m = Module {
            funcs: vec![b.finish(), callee],
            ..Module::default()
        };
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("takes 1 arguments, 0 passed"));
    }

    #[test]
    fn rejects_result_of_void_call() {
        let callee = Builder::new("g", false).finish();
        let mut f = crate::func::Function::new("f", false);
        let dst = f.new_vreg();
        f.block_mut(BlockId(0)).instrs.push(Instr::Call {
            dst: Some(dst),
            callee: FuncId(1),
            args: vec![],
        });
        let m = Module {
            funcs: vec![f, callee],
            ..Module::default()
        };
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("void"));
    }

    #[test]
    fn rejects_return_mismatches() {
        let mut f = crate::func::Function::new("f", true);
        f.block_mut(BlockId(0)).term = Terminator::Return(None);
        let e = verify_module(&module_with(f)).unwrap_err();
        assert!(e.message.contains("bare return"));

        let mut f = crate::func::Function::new("f", false);
        let v = f.new_vreg();
        f.block_mut(BlockId(0))
            .instrs
            .push(Instr::Const { dst: v, value: 0 });
        f.block_mut(BlockId(0)).term = Terminator::Return(Some(v));
        let e = verify_module(&module_with(f)).unwrap_err();
        assert!(e.message.contains("void function"));
    }

    #[test]
    fn rejects_bad_global_reference() {
        let mut f = crate::func::Function::new("f", false);
        let v = f.new_vreg();
        f.block_mut(BlockId(0)).instrs.push(Instr::Load {
            dst: v,
            mem: crate::mem::MemRef::scalar(MemObject::Global(crate::ids::GlobalId(3))),
        });
        let e = verify_module(&module_with(f)).unwrap_err();
        assert!(e.message.contains("nonexistent global"));
    }
}
