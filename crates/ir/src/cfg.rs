//! Control-flow graph utilities: successors, predecessors, orderings.

use crate::func::Function;
use crate::ids::BlockId;

/// Precomputed CFG adjacency for one function.
#[derive(Debug, Clone)]
pub struct Cfg {
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
    rpo: Vec<BlockId>,
}

impl Cfg {
    /// Builds the CFG of `func`.
    pub fn new(func: &Function) -> Self {
        let n = func.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for bid in func.block_ids() {
            for s in func.block(bid).term.successors() {
                succs[bid.index()].push(s);
                preds[s.index()].push(bid);
            }
        }
        let rpo = compute_rpo(func, &succs);
        Cfg { succs, preds, rpo }
    }

    /// Successor blocks of `b`.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Predecessor blocks of `b`.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Blocks reachable from the entry, in reverse postorder.
    pub fn reverse_postorder(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Blocks reachable from the entry, in postorder.
    pub fn postorder(&self) -> Vec<BlockId> {
        let mut po = self.rpo.clone();
        po.reverse();
        po
    }

    /// Whether `b` is reachable from the entry block.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo.contains(&b)
    }

    /// Number of blocks in the underlying function (including unreachable).
    pub fn num_blocks(&self) -> usize {
        self.succs.len()
    }
}

fn compute_rpo(func: &Function, succs: &[Vec<BlockId>]) -> Vec<BlockId> {
    let n = func.blocks.len();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS with explicit stack: (block, next-successor-index).
    let mut stack: Vec<(BlockId, usize)> = vec![(func.entry, 0)];
    visited[func.entry.index()] = true;
    while let Some(&mut (b, ref mut i)) = stack.last_mut() {
        let bs = &succs[b.index()];
        if *i < bs.len() {
            let s = bs[*i];
            *i += 1;
            if !visited[s.index()] {
                visited[s.index()] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;

    /// entry -> {t, e} -> join -> exit(return)
    fn diamond() -> Function {
        let mut b = Builder::new("f", false);
        let c = b.const_(1);
        let t = b.block();
        let e = b.block();
        let j = b.block();
        b.branch(c, t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn diamond_adjacency() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.succs(BlockId(0)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.preds(BlockId(3)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.preds(BlockId(0)), &[] as &[BlockId]);
    }

    #[test]
    fn rpo_starts_at_entry_and_ends_at_exit() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo[3], BlockId(3));
        // RPO property: a block precedes its successors unless on a back edge.
        let pos: Vec<_> = (0..4)
            .map(|i| rpo.iter().position(|b| b.index() == i).unwrap())
            .collect();
        assert!(pos[0] < pos[1] && pos[0] < pos[2]);
        assert!(pos[1] < pos[3] && pos[2] < pos[3]);
    }

    #[test]
    fn unreachable_blocks_are_excluded_from_rpo() {
        let mut b = Builder::new("f", false);
        b.ret(None);
        b.const_(1); // lands in a fresh unreachable block
        let f = b.finish();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.reverse_postorder().len(), 1);
        assert!(cfg.is_reachable(BlockId(0)));
        assert!(!cfg.is_reachable(BlockId(1)));
    }

    #[test]
    fn loop_back_edge() {
        let mut b = Builder::new("f", false);
        let head = b.block();
        let body = b.block();
        let exit = b.block();
        b.jump(head);
        b.switch_to(head);
        let c = b.const_(1);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.jump(head);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        assert!(cfg.preds(head).contains(&body));
        assert!(cfg.preds(head).contains(&BlockId(0)));
        assert_eq!(cfg.reverse_postorder().len(), 4);
    }
}
