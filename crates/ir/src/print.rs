//! Human-readable IR printing.

use crate::func::Function;
use crate::module::Module;
use std::fmt::Write as _;

/// Renders a function as text (one block per paragraph).
pub fn function_to_string(f: &Function) -> String {
    let mut out = String::new();
    let ret = if f.returns_value { " -> int" } else { "" };
    let params: Vec<String> = f.params.iter().map(|p| p.to_string()).collect();
    let _ = writeln!(out, "fn {}({}){} {{", f.name, params.join(", "), ret);
    for (i, slot) in f.frame.iter().enumerate() {
        let _ = writeln!(
            out,
            "  slot{}: {} [{} words, {:?}]",
            i, slot.name, slot.words, slot.kind
        );
    }
    for bid in f.block_ids() {
        let _ = writeln!(out, "{bid}:");
        for instr in &f.block(bid).instrs {
            let _ = writeln!(out, "  {instr}");
        }
        let _ = writeln!(out, "  {}", f.block(bid).term);
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a whole module as text.
pub fn module_to_string(m: &Module) -> String {
    let mut out = String::new();
    for (i, g) in m.globals.iter().enumerate() {
        let kind = if g.is_scalar { "scalar" } else { "array" };
        let _ = writeln!(
            out,
            "global g{}: {} [{} words, {kind}] = {}",
            i, g.name, g.words, g.init
        );
    }
    for f in &m.funcs {
        let _ = writeln!(out);
        out.push_str(&function_to_string(f));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::instr::OpCode;

    #[test]
    fn prints_function_with_blocks() {
        let mut b = Builder::new("sq", true);
        let x = b.param();
        let y = b.binary(OpCode::Mul, x, x);
        b.ret(Some(y));
        let text = function_to_string(&b.finish());
        assert!(text.contains("fn sq(v0) -> int {"));
        assert!(text.contains("bb0:"));
        assert!(text.contains("v1 = mul v0, v0"));
        assert!(text.contains("return v1"));
    }

    #[test]
    fn prints_module_globals() {
        let mut m = Module::default();
        m.globals.push(crate::module::GlobalVar {
            name: "a".into(),
            words: 4,
            is_scalar: false,
            init: 0,
        });
        m.funcs.push(Builder::new("main", false).finish());
        let text = module_to_string(&m);
        assert!(text.contains("global g0: a [4 words, array] = 0"));
        assert!(text.contains("fn main()"));
    }
}
