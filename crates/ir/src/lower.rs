//! Lowering from checked Mini ASTs to IR.
//!
//! The lowering fixes the memory model the unified-management analysis relies
//! on:
//!
//! * Scalars whose address is never taken live in **virtual registers** and
//!   generate no IR memory traffic (their residual traffic appears later as
//!   register spills and caller saves).
//! * Scalar **globals** are loaded/stored at each access (candidate
//!   unambiguous references).
//! * **Arrays** (global or local) and **address-taken scalars** live in
//!   memory; every access carries a symbolic [`RefName`](crate::mem::RefName) for alias analysis.
//! * `&&`/`||` lower to control flow; `for`/`while` to the usual loop shapes.

use crate::builder::Builder;
use crate::func::SlotKind;
use crate::ids::{FuncId, GlobalId, SlotId, VReg};
use crate::instr::OpCode;
use crate::mem::{MemObject, MemRef};
use crate::module::{GlobalVar, Module};
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use ucm_lang::ast::{self, BinOp, Block as AstBlock, Expr, ExprKind, Stmt, StmtKind, UnOp};
use ucm_lang::check::VarTarget;
use ucm_lang::types::Type;
use ucm_lang::CheckedProgram;

/// Lowering failure (currently only a missing `main`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering failed: {}", self.message)
    }
}

impl Error for LowerError {}

/// Lowering options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowerOptions {
    /// When `true` (default), scalars whose address is never taken live in
    /// virtual registers. When `false`, every scalar local and parameter
    /// lives in a frame slot and is loaded/stored at each access — the
    /// codegen style of the unoptimizing late-1980s compilers the paper
    /// measured, where scalar stack traffic dominates the dynamic reference
    /// mix.
    pub promote_scalars: bool,
}

impl Default for LowerOptions {
    fn default() -> Self {
        LowerOptions {
            promote_scalars: true,
        }
    }
}

/// Lowers a checked program to an IR module with default options.
///
/// # Errors
///
/// Returns an error if the program has no `main` function or `main` has
/// parameters / returns a value.
pub fn lower(checked: &CheckedProgram) -> Result<Module, LowerError> {
    lower_with(checked, &LowerOptions::default())
}

/// Lowers a checked program with explicit [`LowerOptions`].
///
/// # Errors
///
/// Returns an error if the program has no `main` function or `main` has
/// parameters / returns a value.
pub fn lower_with(checked: &CheckedProgram, options: &LowerOptions) -> Result<Module, LowerError> {
    let Some(main_idx) = checked.ast.funcs.iter().position(|f| f.name == "main") else {
        return Err(LowerError {
            message: "program has no `main` function".into(),
        });
    };
    let main_fn = &checked.ast.funcs[main_idx];
    if !main_fn.params.is_empty() || main_fn.returns_value {
        return Err(LowerError {
            message: "`main` must take no parameters and return nothing".into(),
        });
    }

    let globals = checked
        .ast
        .globals
        .iter()
        .map(|g| {
            let ty = Type::from(&g.ty);
            GlobalVar {
                name: g.name.clone(),
                words: ty.size_in_words(),
                is_scalar: ty.is_scalar(),
                init: g.init.unwrap_or(0),
            }
        })
        .collect();

    let mut module = Module {
        globals,
        funcs: Vec::with_capacity(checked.ast.funcs.len()),
        main: FuncId::from_index(main_idx),
    };
    for (i, f) in checked.ast.funcs.iter().enumerate() {
        let lowered = FuncLowerer::new(checked, i, f, options.promote_scalars).run();
        module.funcs.push(lowered);
    }
    Ok(module)
}

/// Where an expression's address lands, with alias provenance.
enum AddrInfo {
    /// Address register plus the array object it points into.
    Obj(VReg, MemObject),
    /// Address register derived from a pointer value register.
    Ptr(VReg, VReg),
}

impl AddrInfo {
    fn mem_ref(&self) -> MemRef {
        match *self {
            AddrInfo::Obj(addr, obj) => MemRef::elem(addr, obj),
            AddrInfo::Ptr(addr, ptr) => MemRef::deref(addr, ptr),
        }
    }

    fn addr(&self) -> VReg {
        match *self {
            AddrInfo::Obj(a, _) | AddrInfo::Ptr(a, _) => a,
        }
    }
}

/// Storage assigned to a local or parameter.
#[derive(Clone, Copy)]
enum VarPlace {
    /// Lives in a virtual register.
    Reg(VReg),
    /// Lives in a frame slot (array or address-taken scalar).
    Slot(SlotId),
}

struct FuncLowerer<'a> {
    checked: &'a CheckedProgram,
    fn_index: usize,
    decl: &'a ast::FuncDecl,
    b: Builder,
    locals: HashMap<usize, VarPlace>,
    params: HashMap<usize, VarPlace>,
    /// (continue target, break target) stack.
    loops: Vec<(crate::ids::BlockId, crate::ids::BlockId)>,
    addr_taken_locals: HashSet<usize>,
    addr_taken_params: HashSet<usize>,
    promote: bool,
}

impl<'a> FuncLowerer<'a> {
    fn new(
        checked: &'a CheckedProgram,
        fn_index: usize,
        decl: &'a ast::FuncDecl,
        promote: bool,
    ) -> Self {
        let mut this = FuncLowerer {
            checked,
            fn_index,
            decl,
            b: Builder::new(decl.name.clone(), decl.returns_value),
            locals: HashMap::new(),
            params: HashMap::new(),
            loops: Vec::new(),
            addr_taken_locals: HashSet::new(),
            addr_taken_params: HashSet::new(),
            promote,
        };
        this.scan_addr_taken(&decl.body);
        this
    }

    /// Records which locals/params have their address taken anywhere in the
    /// body; those must live in memory.
    fn scan_addr_taken(&mut self, block: &AstBlock) {
        for stmt in &block.stmts {
            self.scan_stmt(stmt);
        }
    }

    fn scan_stmt(&mut self, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::Let { init, .. } => {
                if let Some(e) = init {
                    self.scan_expr(e);
                }
            }
            StmtKind::Assign { target, value } => {
                self.scan_expr(target);
                self.scan_expr(value);
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.scan_expr(cond);
                self.scan_addr_taken(then_blk);
                if let Some(e) = else_blk {
                    self.scan_addr_taken(e);
                }
            }
            StmtKind::While { cond, body } => {
                self.scan_expr(cond);
                self.scan_addr_taken(body);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(s) = init {
                    self.scan_stmt(s);
                }
                if let Some(c) = cond {
                    self.scan_expr(c);
                }
                if let Some(s) = step {
                    self.scan_stmt(s);
                }
                self.scan_addr_taken(body);
            }
            StmtKind::Return(Some(e)) | StmtKind::Print(e) | StmtKind::Expr(e) => self.scan_expr(e),
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
        }
    }

    fn scan_expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::AddrOf(inner) => {
                if let ExprKind::Var(_) = &inner.kind {
                    match self.checked.info.var_refs[&inner.id] {
                        VarTarget::Local(i) => {
                            self.addr_taken_locals.insert(i);
                        }
                        VarTarget::Param(i) => {
                            self.addr_taken_params.insert(i);
                        }
                        VarTarget::Global(_) => {
                            // Handled by alias analysis via the AddrOf instr.
                        }
                    }
                }
                self.scan_expr(inner);
            }
            ExprKind::Unary(_, a) | ExprKind::Deref(a) => self.scan_expr(a),
            ExprKind::Binary(_, a, b2) | ExprKind::Index(a, b2) => {
                self.scan_expr(a);
                self.scan_expr(b2);
            }
            ExprKind::Call(_, args) => args.iter().for_each(|a| self.scan_expr(a)),
            ExprKind::IntLit(_) | ExprKind::Var(_) => {}
        }
    }

    fn ty(&self, e: &Expr) -> &Type {
        self.checked.type_of(e.id)
    }

    fn run(mut self) -> crate::func::Function {
        // Parameters: registers, copied to a frame slot when address-taken
        // (or always, when scalar promotion is off).
        for (i, p) in self.decl.params.iter().enumerate() {
            let v = self.b.param();
            if !self.promote || self.addr_taken_params.contains(&i) {
                let slot = self.b.slot(p.name.clone(), 1, SlotKind::Scalar);
                self.b.store(v, MemRef::scalar(MemObject::Frame(slot)));
                self.params.insert(i, VarPlace::Slot(slot));
            } else {
                self.params.insert(i, VarPlace::Reg(v));
            }
        }
        let body = self.decl.body.clone();
        self.lower_block(&body);
        if !self.b.is_terminated() {
            if self.decl.returns_value {
                let zero = self.b.const_(0);
                self.b.ret(Some(zero));
            } else {
                self.b.ret(None);
            }
        }
        self.b.finish()
    }

    fn lower_block(&mut self, block: &AstBlock) {
        for stmt in &block.stmts {
            self.lower_stmt(stmt);
        }
    }

    fn lower_stmt(&mut self, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::Let { name, ty, init } => {
                let sem_ty = Type::from(ty);
                // Recover this declaration's slot index: checker assigned
                // locals in declaration order; find the next unassigned one
                // with this name. Because lowering walks in the same order,
                // the first unbound matching index is correct.
                let idx = self.checked.info.fn_locals[self.fn_index]
                    .iter()
                    .enumerate()
                    .position(|(i, li)| li.name == *name && !self.locals.contains_key(&i))
                    .expect("checker recorded every local");
                if !sem_ty.is_scalar() {
                    let slot = self
                        .b
                        .slot(name.clone(), sem_ty.size_in_words(), SlotKind::Array);
                    self.locals.insert(idx, VarPlace::Slot(slot));
                } else if !self.promote || self.addr_taken_locals.contains(&idx) {
                    let slot = self.b.slot(name.clone(), 1, SlotKind::Scalar);
                    let v = match init {
                        Some(e) => self.eval(e),
                        None => self.b.const_(0),
                    };
                    self.b.store(v, MemRef::scalar(MemObject::Frame(slot)));
                    self.locals.insert(idx, VarPlace::Slot(slot));
                } else {
                    let dst = self.b.vreg();
                    match init {
                        Some(e) => {
                            let v = self.eval(e);
                            self.b.copy_to(dst, v);
                        }
                        None => {
                            self.b.emit(crate::instr::Instr::Const { dst, value: 0 });
                        }
                    }
                    self.locals.insert(idx, VarPlace::Reg(dst));
                }
            }
            StmtKind::Assign { target, value } => self.lower_assign(target, value),
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = self.eval(cond);
                let then_bb = self.b.block();
                let join = self.b.block();
                let else_bb = if else_blk.is_some() {
                    self.b.block()
                } else {
                    join
                };
                self.b.branch(c, then_bb, else_bb);
                self.b.switch_to(then_bb);
                self.lower_block(then_blk);
                if !self.b.is_terminated() {
                    self.b.jump(join);
                }
                if let Some(else_blk) = else_blk {
                    self.b.switch_to(else_bb);
                    self.lower_block(else_blk);
                    if !self.b.is_terminated() {
                        self.b.jump(join);
                    }
                }
                self.b.switch_to(join);
            }
            StmtKind::While { cond, body } => {
                let head = self.b.block();
                let body_bb = self.b.block();
                let exit = self.b.block();
                self.b.jump(head);
                self.b.switch_to(head);
                let c = self.eval(cond);
                self.b.branch(c, body_bb, exit);
                self.b.switch_to(body_bb);
                self.loops.push((head, exit));
                self.lower_block(body);
                self.loops.pop();
                if !self.b.is_terminated() {
                    self.b.jump(head);
                }
                self.b.switch_to(exit);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(s) = init {
                    self.lower_stmt(s);
                }
                let head = self.b.block();
                let body_bb = self.b.block();
                let step_bb = self.b.block();
                let exit = self.b.block();
                self.b.jump(head);
                self.b.switch_to(head);
                match cond {
                    Some(c) => {
                        let v = self.eval(c);
                        self.b.branch(v, body_bb, exit);
                    }
                    None => self.b.jump(body_bb),
                }
                self.b.switch_to(body_bb);
                self.loops.push((step_bb, exit));
                self.lower_block(body);
                self.loops.pop();
                if !self.b.is_terminated() {
                    self.b.jump(step_bb);
                }
                self.b.switch_to(step_bb);
                if let Some(s) = step {
                    self.lower_stmt(s);
                }
                self.b.jump(head);
                self.b.switch_to(exit);
            }
            StmtKind::Return(value) => {
                let v = value.as_ref().map(|e| self.eval(e));
                self.b.ret(v);
            }
            StmtKind::Break => {
                let (_, exit) = *self.loops.last().expect("checker validated break");
                self.b.jump(exit);
            }
            StmtKind::Continue => {
                let (cont, _) = *self.loops.last().expect("checker validated continue");
                self.b.jump(cont);
            }
            StmtKind::Print(e) => {
                let v = self.eval(e);
                self.b.print(v);
            }
            StmtKind::Expr(e) => {
                let ExprKind::Call(_, args) = &e.kind else {
                    unreachable!("checker only allows calls as expression statements");
                };
                let callee = self.checked.info.call_targets[&e.id];
                let arg_regs: Vec<VReg> = args.iter().map(|a| self.eval(a)).collect();
                // Discard the result even if the callee returns one.
                self.b.call(FuncId::from_index(callee), arg_regs, false);
            }
        }
    }

    fn lower_assign(&mut self, target: &Expr, value: &Expr) {
        match &target.kind {
            ExprKind::Var(_) => match self.var_place(target) {
                PlaceResolved::Reg(dst) => {
                    let v = self.eval(value);
                    self.b.copy_to(dst, v);
                }
                PlaceResolved::Mem(mem) => {
                    let v = self.eval(value);
                    self.b.store(v, mem);
                }
                PlaceResolved::ArrayBase(..) => {
                    unreachable!("checker rejects assignment to arrays")
                }
            },
            ExprKind::Index(..) | ExprKind::Deref(_) => {
                let addr = self.lower_addr(target);
                let v = self.eval(value);
                self.b.store(v, addr.mem_ref());
            }
            _ => unreachable!("parser only accepts lvalues on the left"),
        }
    }

    /// Evaluates `e` as an rvalue into a register. Array-typed expressions
    /// decay to their base address.
    fn eval(&mut self, e: &Expr) -> VReg {
        match &e.kind {
            ExprKind::IntLit(v) => self.b.const_(*v),
            ExprKind::Var(_) => match self.var_place(e) {
                PlaceResolved::Reg(v) => v,
                PlaceResolved::Mem(mem) => self.b.load(mem),
                PlaceResolved::ArrayBase(obj) => self.b.addr_of(obj),
            },
            ExprKind::Unary(UnOp::Neg, a) => {
                let v = self.eval(a);
                self.b.neg(v)
            }
            ExprKind::Unary(UnOp::Not, a) => {
                let v = self.eval(a);
                self.b.not(v)
            }
            ExprKind::Binary(BinOp::And, lhs, rhs) => self.lower_short_circuit(lhs, rhs, true),
            ExprKind::Binary(BinOp::Or, lhs, rhs) => self.lower_short_circuit(lhs, rhs, false),
            ExprKind::Binary(op, lhs, rhs) => {
                let a = self.eval(lhs);
                let b2 = self.eval(rhs);
                let op = match op {
                    BinOp::Add => OpCode::Add,
                    BinOp::Sub => OpCode::Sub,
                    BinOp::Mul => OpCode::Mul,
                    BinOp::Div => OpCode::Div,
                    BinOp::Rem => OpCode::Rem,
                    BinOp::Eq => OpCode::Eq,
                    BinOp::Ne => OpCode::Ne,
                    BinOp::Lt => OpCode::Lt,
                    BinOp::Le => OpCode::Le,
                    BinOp::Gt => OpCode::Gt,
                    BinOp::Ge => OpCode::Ge,
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                };
                self.b.binary(op, a, b2)
            }
            ExprKind::Call(_, args) => {
                let callee = self.checked.info.call_targets[&e.id];
                let arg_regs: Vec<VReg> = args.iter().map(|a| self.eval(a)).collect();
                self.b
                    .call(FuncId::from_index(callee), arg_regs, true)
                    .expect("value-context calls return a value")
            }
            ExprKind::Index(..) => {
                if self.ty(e).is_scalar() {
                    let addr = self.lower_addr(e);
                    self.b.load(addr.mem_ref())
                } else {
                    // Partial index of a multi-dimensional array: the value
                    // *is* the address (array decay).
                    self.lower_addr(e).addr()
                }
            }
            ExprKind::Deref(_) => {
                let addr = self.lower_addr(e);
                self.b.load(addr.mem_ref())
            }
            ExprKind::AddrOf(inner) => match &inner.kind {
                ExprKind::Var(_) => match self.var_place(inner) {
                    PlaceResolved::Reg(_) => {
                        unreachable!("address-taken scalars live in frame slots")
                    }
                    PlaceResolved::Mem(mem) => match mem.addr {
                        crate::mem::MemAddr::Object(obj) => self.b.addr_of(obj),
                        crate::mem::MemAddr::Reg(r) => r,
                    },
                    PlaceResolved::ArrayBase(obj) => self.b.addr_of(obj),
                },
                ExprKind::Index(..) | ExprKind::Deref(_) => self.lower_addr(inner).addr(),
                _ => unreachable!("parser restricts `&` to lvalues"),
            },
        }
    }

    /// Short-circuit `&&` (and=true) / `||` (and=false), yielding 0/1.
    fn lower_short_circuit(&mut self, lhs: &Expr, rhs: &Expr, and: bool) -> VReg {
        let result = self.b.vreg();
        let l = self.eval(lhs);
        let rhs_bb = self.b.block();
        let short_bb = self.b.block();
        let join = self.b.block();
        if and {
            self.b.branch(l, rhs_bb, short_bb);
        } else {
            self.b.branch(l, short_bb, rhs_bb);
        }
        self.b.switch_to(short_bb);
        self.b.emit(crate::instr::Instr::Const {
            dst: result,
            value: i64::from(!and),
        });
        self.b.jump(join);
        self.b.switch_to(rhs_bb);
        let r = self.eval(rhs);
        let zero = self.b.const_(0);
        let norm = self.b.binary(OpCode::Ne, r, zero);
        self.b.copy_to(result, norm);
        self.b.jump(join);
        self.b.switch_to(join);
        result
    }

    /// Computes the address (and provenance) of an indexable/deref lvalue.
    fn lower_addr(&mut self, e: &Expr) -> AddrInfo {
        match &e.kind {
            ExprKind::Deref(ptr) => {
                let p = self.eval(ptr);
                AddrInfo::Ptr(p, p)
            }
            ExprKind::Index(base, index) => {
                let elem_words = self
                    .ty(base)
                    .index_elem()
                    .expect("checker validated indexing")
                    .size_in_words() as i64;
                let base_info = self.lower_base_addr(base);
                let idx = self.eval(index);
                let offset = if elem_words == 1 {
                    idx
                } else {
                    self.b.binary(OpCode::Mul, idx, elem_words)
                };
                match base_info {
                    AddrInfo::Obj(base_addr, obj) => {
                        let addr = self.b.binary(OpCode::Add, base_addr, offset);
                        AddrInfo::Obj(addr, obj)
                    }
                    AddrInfo::Ptr(base_addr, ptr) => {
                        let addr = self.b.binary(OpCode::Add, base_addr, offset);
                        AddrInfo::Ptr(addr, ptr)
                    }
                }
            }
            _ => unreachable!("lower_addr only sees Index/Deref"),
        }
    }

    /// Address of the base of an indexing chain.
    fn lower_base_addr(&mut self, base: &Expr) -> AddrInfo {
        match self.ty(base) {
            Type::Array(..) => match &base.kind {
                ExprKind::Var(_) => match self.var_place(base) {
                    PlaceResolved::ArrayBase(obj) => {
                        let a = self.b.addr_of(obj);
                        AddrInfo::Obj(a, obj)
                    }
                    _ => unreachable!("array vars resolve to array bases"),
                },
                ExprKind::Index(..) => self.lower_addr(base),
                _ => unreachable!("only vars and indexes have array type"),
            },
            Type::Ptr => {
                let p = self.eval(base);
                AddrInfo::Ptr(p, p)
            }
            Type::Int => unreachable!("checker rejects indexing ints"),
        }
    }

    /// Resolves a `Var` expression to its storage.
    fn var_place(&mut self, e: &Expr) -> PlaceResolved {
        let target = self.checked.info.var_refs[&e.id];
        match target {
            VarTarget::Global(g) => {
                let gid = GlobalId::from_index(g);
                if self.checked.ast.globals[g].ty.size_in_words() == 1
                    && matches!(
                        Type::from(&self.checked.ast.globals[g].ty),
                        Type::Int | Type::Ptr
                    )
                {
                    PlaceResolved::Mem(MemRef::scalar(MemObject::Global(gid)))
                } else {
                    PlaceResolved::ArrayBase(MemObject::Global(gid))
                }
            }
            VarTarget::Param(i) => match self.params[&i] {
                VarPlace::Reg(v) => PlaceResolved::Reg(v),
                VarPlace::Slot(s) => PlaceResolved::Mem(MemRef::scalar(MemObject::Frame(s))),
            },
            VarTarget::Local(i) => match self.locals[&i] {
                VarPlace::Reg(v) => PlaceResolved::Reg(v),
                VarPlace::Slot(s) => {
                    let info = &self.checked.info.fn_locals[self.fn_index][i];
                    if info.ty.is_scalar() {
                        PlaceResolved::Mem(MemRef::scalar(MemObject::Frame(s)))
                    } else {
                        PlaceResolved::ArrayBase(MemObject::Frame(s))
                    }
                }
            },
        }
    }
}

enum PlaceResolved {
    Reg(VReg),
    Mem(MemRef),
    ArrayBase(MemObject),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;
    use crate::verify::verify_module;
    use ucm_lang::parse_and_check;

    fn lower_src(src: &str) -> Module {
        let checked = parse_and_check(src).expect("source must check");
        let m = lower(&checked).expect("source must lower");
        verify_module(&m).expect("lowered module must verify");
        m
    }

    fn count_instrs(m: &Module, pred: impl Fn(&Instr) -> bool) -> usize {
        m.funcs
            .iter()
            .flat_map(|f| f.instrs().map(|(_, i)| i))
            .filter(|i| pred(i))
            .count()
    }

    #[test]
    fn requires_main() {
        let checked = parse_and_check("fn f() {}").unwrap();
        assert!(lower(&checked).is_err());
        let checked = parse_and_check("fn main(x: int) {}").unwrap();
        assert!(lower(&checked).is_err());
        let checked = parse_and_check("fn main() -> int { return 0; }").unwrap();
        assert!(lower(&checked).is_err());
    }

    #[test]
    fn scalar_locals_stay_in_registers() {
        let m = lower_src("fn main() { let x: int = 1; let y: int = x + 2; print(y); }");
        assert_eq!(count_instrs(&m, Instr::is_memory), 0);
    }

    #[test]
    fn scalar_globals_are_loaded_and_stored() {
        let m = lower_src("global g: int; fn main() { g = g + 1; print(g); }");
        let loads = count_instrs(&m, |i| matches!(i, Instr::Load { .. }));
        let stores = count_instrs(&m, |i| matches!(i, Instr::Store { .. }));
        assert_eq!(loads, 2); // g in `g + 1`, g in `print(g)`
        assert_eq!(stores, 1);
    }

    #[test]
    fn array_access_carries_elem_name() {
        let m = lower_src("global a: [int; 8]; fn main() { a[3] = 7; print(a[3]); }");
        let f = m.func(m.main);
        let mems: Vec<_> = f.instrs().filter_map(|(_, i)| i.mem().copied()).collect();
        assert_eq!(mems.len(), 2);
        for mem in mems {
            assert!(matches!(
                mem.name,
                crate::mem::RefName::Elem(MemObject::Global(GlobalId(0)))
            ));
        }
    }

    #[test]
    fn multidim_index_scales_rows() {
        let m = lower_src("global m: [[int; 5]; 4]; fn main() { m[2][3] = 1; }");
        // Row scaling by 5 must appear as a multiply.
        let muls = count_instrs(&m, |i| {
            matches!(
                i,
                Instr::Binary {
                    op: OpCode::Mul,
                    rhs: crate::instr::Operand::Imm(5),
                    ..
                }
            )
        });
        assert_eq!(muls, 1);
    }

    #[test]
    fn deref_carries_pointer_name() {
        let m = lower_src("global a: [int; 4]; fn main() { let p: *int = a; *p = 9; }");
        let f = m.func(m.main);
        let store_mem = f
            .instrs()
            .find_map(|(_, i)| match i {
                Instr::Store { mem, .. } => Some(*mem),
                _ => None,
            })
            .expect("store exists");
        assert!(matches!(store_mem.name, crate::mem::RefName::Deref(_)));
    }

    #[test]
    fn addr_taken_local_moves_to_frame() {
        let m = lower_src("fn main() { let x: int = 5; let p: *int = &x; *p = 6; print(x); }");
        let f = m.func(m.main);
        assert_eq!(f.frame.len(), 1);
        assert_eq!(f.frame[0].kind, SlotKind::Scalar);
        // x's reads/writes go through memory now.
        let scalar_frame_refs = f
            .instrs()
            .filter(|(_, i)| {
                i.mem().is_some_and(|m| {
                    matches!(m.name, crate::mem::RefName::Scalar(MemObject::Frame(_)))
                })
            })
            .count();
        assert!(scalar_frame_refs >= 2);
    }

    #[test]
    fn addr_taken_param_copied_to_slot() {
        let m = lower_src(
            "fn f(x: int) -> int { let p: *int = &x; return *p; } \
             fn main() { print(f(3)); }",
        );
        let f = &m.funcs[0];
        assert_eq!(f.frame.len(), 1);
        // Entry block starts with the spill of the incoming parameter.
        let first = &f.block(f.entry).instrs[0];
        assert!(matches!(first, Instr::Store { .. }));
    }

    #[test]
    fn local_array_allocates_frame_slot() {
        let m = lower_src("fn main() { let a: [int; 16]; a[0] = 1; print(a[0]); }");
        let f = m.func(m.main);
        assert_eq!(f.frame.len(), 1);
        assert_eq!(f.frame[0].words, 16);
        assert_eq!(f.frame[0].kind, SlotKind::Array);
    }

    #[test]
    fn short_circuit_and_produces_branches() {
        let m = lower_src(
            "fn t() -> int { print(1); return 1; } \
             fn main() { let x: int = 0; if x && t() { print(2); } }",
        );
        let f = m.func(m.main);
        // Short-circuit: more than one branch terminator.
        let branches = f
            .block_ids()
            .filter(|b| matches!(f.block(*b).term, crate::instr::Terminator::Branch { .. }))
            .count();
        assert!(branches >= 2, "expected short-circuit control flow");
    }

    #[test]
    fn while_loop_shape() {
        let m = lower_src("fn main() { let i: int = 0; while i < 3 { i = i + 1; } }");
        let f = m.func(m.main);
        let cfg = crate::cfg::Cfg::new(f);
        // Some block must have two predecessors (the loop head).
        assert!(f.block_ids().any(|b| cfg.preds(b).len() == 2));
    }

    #[test]
    fn for_loop_with_continue_and_break() {
        let m = lower_src(
            "fn main() { let s: int = 0; \
             for s = 0; s < 10; s = s + 1 { \
               if s == 2 { continue; } \
               if s == 5 { break; } \
               print(s); } }",
        );
        verify_module(&m).unwrap();
    }

    #[test]
    fn uninitialized_locals_are_zeroed() {
        let m = lower_src("fn main() { let x: int; print(x); }");
        let f = m.func(m.main);
        assert!(f
            .instrs()
            .any(|(_, i)| matches!(i, Instr::Const { value: 0, .. })));
    }

    #[test]
    fn call_result_discard_in_statement_position() {
        let m = lower_src("fn f() -> int { return 1; } fn main() { f(); }");
        let f = m.func(m.main);
        let call = f
            .instrs()
            .find_map(|(_, i)| match i {
                Instr::Call { dst, .. } => Some(*dst),
                _ => None,
            })
            .unwrap();
        assert!(call.is_none(), "discarded call result should have no dst");
    }

    #[test]
    fn pointer_indexing_is_deref() {
        let m = lower_src("fn f(p: *int) { p[2] = 1; } fn main() { }");
        let f = &m.funcs[0];
        let mem = f
            .instrs()
            .find_map(|(_, i)| i.mem().copied())
            .expect("store through pointer");
        assert!(matches!(mem.name, crate::mem::RefName::Deref(_)));
    }

    #[test]
    fn global_initializers_propagate() {
        let m = lower_src("global x: int = -42; fn main() { print(x); }");
        assert_eq!(m.globals[0].init, -42);
        assert!(m.globals[0].is_scalar);
    }

    #[test]
    fn else_if_chains_lower() {
        let m = lower_src(
            "fn main() { let x: int = 2; \
             if x == 1 { print(1); } else if x == 2 { print(2); } else { print(3); } }",
        );
        verify_module(&m).unwrap();
    }
}
