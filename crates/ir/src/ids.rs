//! Index newtypes used throughout the IR.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// Converts to a `usize` for indexing.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an id from a vector index.
            ///
            /// # Panics
            ///
            /// Panics if `i` exceeds `u32::MAX`.
            pub fn from_index(i: usize) -> Self {
                $name(u32::try_from(i).expect("id overflow"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A virtual register. Functions have an unbounded supply; the register
    /// allocator later maps these onto physical registers or spill slots.
    VReg,
    "v"
);
id_type!(
    /// A basic block within a function.
    BlockId,
    "bb"
);
id_type!(
    /// A function within a module.
    FuncId,
    "fn"
);
id_type!(
    /// A global variable within a module.
    GlobalId,
    "g"
);
id_type!(
    /// A stack-frame slot group within a function (a local array, an
    /// address-taken scalar, or a regalloc-created spill slot).
    SlotId,
    "slot"
);

/// Identifies one instruction inside a function: block plus position.
///
/// Terminators are addressed by `index == block.instrs.len()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstrRef {
    /// Containing block.
    pub block: BlockId,
    /// Position within the block's instruction list.
    pub index: u32,
}

impl InstrRef {
    /// Creates an instruction reference.
    pub fn new(block: BlockId, index: usize) -> Self {
        InstrRef {
            block,
            index: u32::try_from(index).expect("instruction index overflow"),
        }
    }
}

impl fmt::Display for InstrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.block, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let v = VReg::from_index(17);
        assert_eq!(v.index(), 17);
        assert_eq!(v.to_string(), "v17");
        assert_eq!(BlockId(3).to_string(), "bb3");
        assert_eq!(GlobalId(0).to_string(), "g0");
        assert_eq!(SlotId(2).to_string(), "slot2");
        assert_eq!(FuncId(1).to_string(), "fn1");
    }

    #[test]
    fn instr_ref_ordering_within_block() {
        let a = InstrRef::new(BlockId(0), 1);
        let b = InstrRef::new(BlockId(0), 2);
        let c = InstrRef::new(BlockId(1), 0);
        assert!(a < b && b < c);
        assert_eq!(a.to_string(), "bb0[1]");
    }
}
