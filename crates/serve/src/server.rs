//! The Unix-socket server hosting an [`Engine`].
//!
//! One listener thread accepts; each connection gets a handler thread
//! that reads newline-delimited requests with a bounded line reader (a
//! line past the cap is a typed `too-large` error, not unbounded
//! buffering) and writes response lines back. All connections share
//! one engine — and therefore one artifact cache and one worker pool.
//!
//! Shutdown is cooperative: a `shutdown` request flips a flag and then
//! dials the socket once so the blocking `accept` wakes up and observes
//! it; `run` joins every handler before returning, so in-flight
//! requests finish and the socket file is gone when it returns. Reads
//! carry a short timeout so a handler parked on an idle connection
//! notices the flag too — without it, one idle client would hold
//! shutdown hostage.

use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::cache::ArtifactCacheStats;
use crate::engine::{Engine, SweepOutcome};
use crate::protocol::{
    bye_line, cell_line, error_line, parse_request, part_line, pong_line, start_line, Request,
    RequestError, DEFAULT_MAX_REQUEST_BYTES,
};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix-socket path to listen on.
    pub socket: PathBuf,
    /// Worker threads for miss recompute (`0` = all cores).
    pub jobs: usize,
    /// Artifact-cache byte budget.
    pub cache_bytes: usize,
    /// Cap on one request line.
    pub max_request_bytes: usize,
    /// Directory persisting the cell store across restarts (`None` =
    /// memory only).
    pub cache_dir: Option<PathBuf>,
}

impl ServeConfig {
    /// Defaults for `socket`: all cores, a 256 MiB cache, the 1 MiB
    /// request cap, no persistence.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        ServeConfig {
            socket: socket.into(),
            jobs: 0,
            cache_bytes: 256 << 20,
            max_request_bytes: DEFAULT_MAX_REQUEST_BYTES,
            cache_dir: None,
        }
    }
}

/// A bound, not-yet-running server. Splitting bind from [`Server::run`]
/// lets the CLI print its "listening" line (and tests learn the socket
/// path) after the socket exists but before the accept loop blocks.
pub struct Server {
    listener: UnixListener,
    engine: Arc<Engine>,
    cfg: ServeConfig,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds the socket (replacing a stale socket file from a dead
    /// server, the Unix convention) and builds the engine.
    ///
    /// # Errors
    ///
    /// I/O errors from the bind; notably `AddrInUse` when a live server
    /// already owns the path.
    pub fn bind(cfg: ServeConfig) -> io::Result<Server> {
        // A previous server that died without cleanup leaves the file
        // behind and `bind` would fail; but only unlink if nothing
        // answers, so two live servers can't fight over the path.
        if cfg.socket.exists() && UnixStream::connect(&cfg.socket).is_err() {
            std::fs::remove_file(&cfg.socket)?;
        }
        let listener = UnixListener::bind(&cfg.socket)?;
        let cache = match &cfg.cache_dir {
            Some(dir) => crate::cache::ArtifactCache::with_disk(cfg.cache_bytes, dir)?,
            None => crate::cache::ArtifactCache::new(cfg.cache_bytes),
        };
        let engine = Arc::new(Engine::with_cache(cfg.jobs, cache));
        Ok(Server {
            listener,
            engine,
            cfg,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound socket path.
    pub fn socket(&self) -> &Path {
        &self.cfg.socket
    }

    /// Serves until a `shutdown` request arrives. Joins every handler
    /// and removes the socket file before returning.
    ///
    /// # Errors
    ///
    /// I/O errors from `accept`; per-connection errors are contained in
    /// their handlers.
    pub fn run(self) -> io::Result<()> {
        let mut handlers = Vec::new();
        for stream in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            let engine = Arc::clone(&self.engine);
            let stop = Arc::clone(&self.stop);
            let socket = self.cfg.socket.clone();
            let max = self.cfg.max_request_bytes;
            handlers.push(std::thread::spawn(move || {
                handle_connection(stream, &engine, &stop, &socket, max);
            }));
        }
        for h in handlers {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&self.cfg.socket);
        Ok(())
    }
}

/// What the bounded reader got.
enum Line {
    /// A complete line (without the newline).
    Full(Vec<u8>),
    /// The line exceeded the cap; the rest up to the newline was
    /// discarded, so the stream is resynchronised.
    TooLarge,
    /// Clean end of stream at a line boundary.
    Eof,
    /// End of stream mid-line.
    Truncated,
}

/// A bounded line reader that survives read timeouts: partial-line
/// state persists across [`BoundedLineReader::poll_line`] calls, so the
/// handler can check the stop flag between timeouts without dropping
/// bytes.
struct BoundedLineReader<R> {
    inner: R,
    buf: Vec<u8>,
    /// The current line already blew the cap; discard until newline.
    over: bool,
    max: usize,
}

impl<R: BufRead> BoundedLineReader<R> {
    fn new(inner: R, max: usize) -> Self {
        BoundedLineReader {
            inner,
            buf: Vec::new(),
            over: false,
            max,
        }
    }

    /// Reads until a newline, the cap, EOF, or a read timeout
    /// (`Ok(None)`), never buffering more than `max` bytes of one line.
    fn poll_line(&mut self) -> io::Result<Option<Line>> {
        loop {
            let chunk = match self.inner.fill_buf() {
                Ok(c) => c,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(None);
                }
                Err(e) => return Err(e),
            };
            if chunk.is_empty() {
                return Ok(Some(if self.over {
                    Line::TooLarge
                } else if self.buf.is_empty() {
                    Line::Eof
                } else {
                    Line::Truncated
                }));
            }
            if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
                if !self.over {
                    self.buf.extend_from_slice(&chunk[..pos]);
                }
                self.inner.consume(pos + 1);
                let over = self.over || self.buf.len() > self.max;
                self.over = false;
                let line = std::mem::take(&mut self.buf);
                return Ok(Some(if over {
                    Line::TooLarge
                } else {
                    Line::Full(line)
                }));
            }
            if !self.over {
                self.buf.extend_from_slice(chunk);
                if self.buf.len() > self.max {
                    // Stop accumulating; keep consuming to the newline
                    // so the connection can continue afterwards.
                    self.buf.clear();
                    self.over = true;
                }
            }
            let n = chunk.len();
            self.inner.consume(n);
        }
    }
}

fn handle_connection(
    stream: UnixStream,
    engine: &Engine,
    stop: &AtomicBool,
    socket: &Path,
    max_request_bytes: usize,
) {
    // The read timeout is what lets this handler observe the stop flag
    // while parked on an idle connection.
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(100)));
    let mut reader = BoundedLineReader::new(
        BufReader::new(match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        }),
        max_request_bytes,
    );
    let mut writer = stream;
    loop {
        let line = match reader.poll_line() {
            Ok(None) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Ok(Some(Line::Full(l))) => l,
            Ok(Some(Line::TooLarge)) => {
                let e = RequestError::TooLarge {
                    limit: max_request_bytes,
                };
                if write_line(&mut writer, &error_line(e.kind(), &e.to_string())).is_err() {
                    return;
                }
                continue;
            }
            Ok(Some(Line::Eof)) => return,
            Ok(Some(Line::Truncated)) => {
                // The peer is gone; the error line is best-effort.
                let e = RequestError::Truncated;
                let _ = write_line(&mut writer, &error_line(e.kind(), &e.to_string()));
                return;
            }
            Err(_) => return,
        };
        let line = String::from_utf8_lossy(&line);
        if line.trim().is_empty() {
            continue;
        }
        engine.count_request();
        let req = match parse_request(&line) {
            Ok(r) => r,
            Err(e) => {
                if write_line(&mut writer, &error_line(e.kind(), &e.to_string())).is_err() {
                    return;
                }
                continue;
            }
        };
        let keep_going = match req {
            Request::Ping => write_line(&mut writer, &pong_line()).is_ok(),
            Request::Stats => {
                let line = stats_line(&engine.cache_stats(), engine.requests());
                write_line(&mut writer, &line).is_ok()
            }
            Request::Shutdown => {
                let _ = write_line(&mut writer, &bye_line());
                stop.store(true, Ordering::SeqCst);
                // Wake the blocking accept so the serve loop observes
                // the flag; the dialled connection is never spoken on.
                let _ = UnixStream::connect(socket);
                return;
            }
            Request::Sweep(sr) => {
                let started = Instant::now();
                match engine.sweep(&sr) {
                    Err(e) => {
                        write_line(&mut writer, &error_line(e.kind(), &e.to_string())).is_ok()
                    }
                    Ok(out) => stream_sweep(&mut writer, &out, started).is_ok(),
                }
            }
        };
        if !keep_going {
            return;
        }
    }
}

fn write_line(w: &mut impl Write, line: &str) -> io::Result<()> {
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")
}

/// Streams one sweep's response lines: `start`, the artifact in order,
/// `done`.
fn stream_sweep(w: &mut impl Write, out: &SweepOutcome, started: Instant) -> io::Result<()> {
    write_line(w, &start_line(out.cells.len(), out.traces))?;
    write_line(w, &part_line(&out.header))?;
    for (i, cell) in out.cells.iter().enumerate() {
        write_line(w, &cell_line(i, cell))?;
    }
    write_line(w, &part_line(&out.footer))?;
    let p = out.phases;
    write_line(
        w,
        &format!(
            "{{\"ok\":true,\"op\":\"done\",\"cold\":{},\"hits\":{},\"misses\":{},\
             \"elapsed_us\":{},\"phases\":{{\"canon_us\":{},\"record_us\":{},\
             \"replay_us\":{},\"assemble_us\":{}}}}}",
            out.cold,
            out.hits,
            out.misses,
            started.elapsed().as_micros(),
            p.canon_us,
            p.record_us,
            p.replay_us,
            p.assemble_us
        ),
    )
}

/// `stats` response line: request count plus per-store cache counters.
pub fn stats_line(stats: &ArtifactCacheStats, requests: u64) -> String {
    let store = |c: &crate::cache::CacheCounters| {
        format!(
            "{{\"hits\":{},\"misses\":{},\"evictions\":{},\"rejected\":{},\
             \"resident_bytes\":{},\"entries\":{}}}",
            c.hits, c.misses, c.evictions, c.rejected, c.resident_bytes, c.entries
        )
    };
    let disk = match &stats.disk {
        None => String::new(),
        Some(d) => format!(
            ",\"disk\":{{\"loaded\":{},\"hits\":{},\"misses\":{},\"corrupt\":{},\
             \"write_errors\":{}}}",
            d.loaded, d.hits, d.misses, d.corrupt, d.write_errors
        ),
    };
    format!(
        "{{\"ok\":true,\"op\":\"stats\",\"requests\":{},\"cache\":{{\"programs\":{},\
         \"traces\":{},\"cells\":{}{}}}}}",
        requests,
        store(&stats.programs),
        store(&stats.traces),
        store(&stats.cells),
        disk
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn bounded_reader_enforces_the_cap_and_resynchronises() {
        let mut r = BoundedLineReader::new(Cursor::new(b"short\n".to_vec()), 10);
        match r.poll_line().unwrap() {
            Some(Line::Full(l)) => assert_eq!(l, b"short"),
            _ => panic!("expected a full line"),
        }

        // An oversized line is reported and fully consumed, so the next
        // line still parses on the same reader.
        let mut big = Vec::new();
        big.extend_from_slice(&[b'x'; 100]);
        big.push(b'\n');
        big.extend_from_slice(b"next\n");
        let mut r = BoundedLineReader::new(Cursor::new(big), 10);
        assert!(matches!(r.poll_line().unwrap(), Some(Line::TooLarge)));
        match r.poll_line().unwrap() {
            Some(Line::Full(l)) => assert_eq!(l, b"next"),
            _ => panic!("expected resynchronised line"),
        }
        assert!(matches!(r.poll_line().unwrap(), Some(Line::Eof)));

        // EOF mid-line is truncation, not a silent success.
        let mut r = BoundedLineReader::new(Cursor::new(b"no newline".to_vec()), 100);
        assert!(matches!(r.poll_line().unwrap(), Some(Line::Truncated)));
    }
}
