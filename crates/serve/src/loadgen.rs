//! Seeded load generation against a serve socket, with a
//! schema-versioned `BENCH_serve.json` artifact.
//!
//! The mix is deterministic in the seed: the first request is always
//! the quick grid (the cold, cache-filling request), and each later
//! request is either a repeat of that same grid (~2/3 — warm after the
//! first) or a fresh generated Mini source (~1/3 — cold program, trace
//! and cells). Latency is measured client-side around each request;
//! cold/warm classification comes from the server's own `cold` flag on
//! the `done` line, so the report never guesses.
//!
//! By default the generator self-hosts: it binds a private server on a
//! temporary socket, drives it, shuts it down, and reports — one
//! command, no daemon management. Pointing it at an existing socket
//! measures that server instead.

use std::error::Error;
use std::fmt;
use std::io;
use std::path::PathBuf;
use std::time::Instant;

use ucm_bench::json::{self, escape, Json};

use crate::client::{Client, ClientError, StatsReply, StoreStats};
use crate::protocol::{SourceSpec, SweepRequest};
use crate::server::{ServeConfig, Server};

/// `BENCH_serve.json` schema version.
pub const SERVE_SCHEMA_VERSION: u64 = 1;

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Mix seed.
    pub seed: u64,
    /// Total requests to issue (including the first cold one).
    pub requests: usize,
    /// Existing socket to drive; `None` self-hosts a private server.
    pub socket: Option<PathBuf>,
    /// Worker threads for a self-hosted server (`0` = all cores).
    pub jobs: usize,
    /// Artifact-cache budget for a self-hosted server.
    pub cache_bytes: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            seed: 0xC0FFEE,
            requests: 24,
            socket: None,
            jobs: 0,
            cache_bytes: 256 << 20,
        }
    }
}

/// A load-generation failure.
#[derive(Debug)]
pub enum LoadgenError {
    /// Self-host server failed to bind or run.
    Io(io::Error),
    /// A request failed.
    Client(ClientError),
    /// The configuration is unusable (zero requests).
    Config(String),
}

impl fmt::Display for LoadgenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadgenError::Io(e) => write!(f, "i/o: {e}"),
            LoadgenError::Client(e) => write!(f, "request failed: {e}"),
            LoadgenError::Config(m) => write!(f, "bad configuration: {m}"),
        }
    }
}

impl Error for LoadgenError {}

impl From<io::Error> for LoadgenError {
    fn from(e: io::Error) -> Self {
        LoadgenError::Io(e)
    }
}

impl From<ClientError> for LoadgenError {
    fn from(e: ClientError) -> Self {
        LoadgenError::Client(e)
    }
}

/// Nearest-rank latency percentiles over one request class.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencyStats {
    /// Median, microseconds.
    pub p50_us: u64,
    /// 90th percentile, microseconds.
    pub p90_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
}

/// The loadgen run's results.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Mix seed.
    pub seed: u64,
    /// Requests issued.
    pub requests: usize,
    /// Requests the server marked cold (computed something).
    pub cold_requests: usize,
    /// Requests served entirely from cache.
    pub warm_requests: usize,
    /// Wall time of the whole run, microseconds.
    pub elapsed_us: u64,
    /// Requests per second over the whole run.
    pub throughput_rps: f64,
    /// Percentiles over every request.
    pub overall: LatencyStats,
    /// Percentiles over cold requests only.
    pub cold: LatencyStats,
    /// Percentiles over warm requests only.
    pub warm: LatencyStats,
    /// Cold quick-grid latency ÷ median warm quick-grid latency;
    /// `None` when the mix produced no warm repeat.
    pub warm_speedup: Option<f64>,
    /// Server cache counters at the end of the run.
    pub cache: StatsReply,
}

/// splitmix64 — the tiny seeded generator the fuzzer also uses.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Nearest-rank percentile of a sorted sample.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn latency_stats(mut samples: Vec<u64>) -> LatencyStats {
    samples.sort_unstable();
    LatencyStats {
        p50_us: percentile(&samples, 50.0),
        p90_us: percentile(&samples, 90.0),
        p99_us: percentile(&samples, 99.0),
    }
}

/// A fresh tiny Mini workload, varied by `k` so its canonical source —
/// and therefore every cache key — differs per generated request.
fn generated_source(k: u64) -> SourceSpec {
    let bound = 64 + (k % 128);
    SourceSpec {
        name: format!("gen-{k}"),
        text: format!(
            "fn main() {{\n    let i: int = 0;\n    let s: int = 0;\n    \
             while i < {bound} {{\n        s = s + i;\n        i = i + 1;\n    }}\n    \
             print(s);\n}}\n"
        ),
    }
}

/// Runs the load generator.
///
/// # Errors
///
/// Fails on a zero-request configuration, on self-host bind/serve
/// errors, and on any failed request.
pub fn run_loadgen(cfg: &LoadgenConfig) -> Result<LoadgenReport, LoadgenError> {
    if cfg.requests == 0 {
        return Err(LoadgenError::Config("requests must be > 0".into()));
    }

    // Self-host if no socket was given.
    let (socket, hosted) = match &cfg.socket {
        Some(s) => (s.clone(), None),
        None => {
            let path = std::env::temp_dir().join(format!(
                "ucm-serve-loadgen-{}-{:x}.sock",
                std::process::id(),
                cfg.seed
            ));
            let mut sc = ServeConfig::new(&path);
            sc.jobs = cfg.jobs;
            sc.cache_bytes = cfg.cache_bytes;
            let server = Server::bind(sc)?;
            let handle = std::thread::spawn(move || server.run());
            (path, Some(handle))
        }
    };

    let run = || -> Result<LoadgenReport, LoadgenError> {
        let mut client = Client::connect(&socket)?;
        let quick = SweepRequest::default();
        let mut rng = cfg.seed;
        let mut all = Vec::with_capacity(cfg.requests);
        let mut cold_lat = Vec::new();
        let mut warm_lat = Vec::new();
        let mut warm_quick_lat = Vec::new();
        let mut cold_quick_us = None;
        let started = Instant::now();
        for i in 0..cfg.requests {
            // First request is always the cache-filling quick grid;
            // afterwards ~1/3 fresh sources keep the cold path honest.
            let fresh = i > 0 && splitmix64(&mut rng).is_multiple_of(3);
            let req = if fresh {
                SweepRequest {
                    source: Some(generated_source(splitmix64(&mut rng))),
                    ..SweepRequest::default()
                }
            } else {
                quick.clone()
            };
            let t = Instant::now();
            let reply = client.sweep(&req)?;
            let us = t.elapsed().as_micros() as u64;
            all.push(us);
            if reply.cold {
                cold_lat.push(us);
                if !fresh && cold_quick_us.is_none() {
                    cold_quick_us = Some(us);
                }
            } else {
                warm_lat.push(us);
                if !fresh {
                    warm_quick_lat.push(us);
                }
            }
        }
        let elapsed_us = started.elapsed().as_micros().max(1) as u64;
        let cache = client.stats()?;
        if hosted.is_some() {
            client.shutdown()?;
        }

        let warm_speedup = match (cold_quick_us, warm_quick_lat.is_empty()) {
            (Some(cold_us), false) => {
                let p50 = latency_stats(warm_quick_lat.clone()).p50_us.max(1);
                Some(cold_us as f64 / p50 as f64)
            }
            _ => None,
        };
        Ok(LoadgenReport {
            seed: cfg.seed,
            requests: cfg.requests,
            cold_requests: cold_lat.len(),
            warm_requests: warm_lat.len(),
            elapsed_us,
            throughput_rps: cfg.requests as f64 / (elapsed_us as f64 / 1e6),
            overall: latency_stats(all),
            cold: latency_stats(cold_lat),
            warm: latency_stats(warm_lat),
            warm_speedup,
            cache,
        })
    };

    let result = run();
    if let Some(handle) = hosted {
        // On the success path the shutdown above ends the server; on
        // the error path nothing does, so dial a shutdown best-effort
        // before joining to avoid hanging.
        if result.is_err() {
            if let Ok(mut c) = Client::connect(&socket) {
                let _ = c.shutdown();
            }
        }
        match handle.join() {
            Ok(r) => r?,
            Err(_) => return Err(LoadgenError::Io(io::Error::other("server thread panicked"))),
        }
    }
    result
}

impl LoadgenReport {
    /// Serialises the report as `BENCH_serve.json` (schema v1).
    pub fn to_json(&self) -> String {
        let lat = |l: &LatencyStats| {
            format!(
                "{{\"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}}}",
                l.p50_us, l.p90_us, l.p99_us
            )
        };
        let store = |s: &StoreStats| {
            format!(
                "{{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \
                 \"resident_bytes\": {}, \"entries\": {}}}",
                s.hits, s.misses, s.evictions, s.resident_bytes, s.entries
            )
        };
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {SERVE_SCHEMA_VERSION},\n"));
        out.push_str(&format!(
            "  \"generator\": \"{}\",\n",
            escape("ucmc loadgen")
        ));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"requests\": {},\n", self.requests));
        out.push_str(&format!("  \"cold_requests\": {},\n", self.cold_requests));
        out.push_str(&format!("  \"warm_requests\": {},\n", self.warm_requests));
        out.push_str(&format!("  \"elapsed_us\": {},\n", self.elapsed_us));
        out.push_str(&format!("  \"throughput_rps\": {},\n", self.throughput_rps));
        out.push_str("  \"latency_us\": {\n");
        out.push_str(&format!("    \"overall\": {},\n", lat(&self.overall)));
        out.push_str(&format!("    \"cold\": {},\n", lat(&self.cold)));
        out.push_str(&format!("    \"warm\": {}\n", lat(&self.warm)));
        out.push_str("  },\n");
        out.push_str(&format!(
            "  \"warm_speedup\": {},\n",
            match self.warm_speedup {
                Some(x) => format!("{x}"),
                None => "null".to_string(),
            }
        ));
        out.push_str("  \"cache\": {\n");
        out.push_str(&format!(
            "    \"programs\": {},\n",
            store(&self.cache.programs)
        ));
        out.push_str(&format!("    \"traces\": {},\n", store(&self.cache.traces)));
        out.push_str(&format!("    \"cells\": {}\n", store(&self.cache.cells)));
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }
}

/// Validates a `BENCH_serve.json` document: schema version, required
/// fields, and the conservation identities the generator guarantees.
///
/// # Errors
///
/// A human-readable description of the first violation.
pub fn validate_serve_json(text: &str) -> Result<(), String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let num = |key: &str| -> Result<f64, String> {
        doc.get(key)
            .and_then(Json::as_exact_num)
            .ok_or_else(|| format!("missing or inexact `{key}`"))
    };
    let version = num("schema_version")?;
    if version != SERVE_SCHEMA_VERSION as f64 {
        return Err(format!("unsupported schema_version {version}"));
    }
    if doc.get("generator").and_then(Json::as_str).is_none() {
        return Err("missing `generator`".to_string());
    }
    num("seed")?;
    let requests = num("requests")?;
    let cold = num("cold_requests")?;
    let warm = num("warm_requests")?;
    if cold + warm != requests {
        return Err(format!(
            "cold_requests ({cold}) + warm_requests ({warm}) != requests ({requests})"
        ));
    }
    if num("elapsed_us")? <= 0.0 {
        return Err("elapsed_us must be positive".to_string());
    }
    let rps = doc
        .get("throughput_rps")
        .and_then(Json::as_num)
        .ok_or("missing `throughput_rps`")?;
    if !rps.is_finite() || rps <= 0.0 {
        return Err("throughput_rps must be positive and finite".to_string());
    }
    let latency = doc.get("latency_us").ok_or("missing `latency_us`")?;
    for class in ["overall", "cold", "warm"] {
        let l = latency
            .get(class)
            .ok_or_else(|| format!("missing `latency_us.{class}`"))?;
        let mut prev = 0.0;
        for p in ["p50_us", "p90_us", "p99_us"] {
            let v = l
                .get(p)
                .and_then(Json::as_exact_num)
                .ok_or_else(|| format!("missing or inexact `latency_us.{class}.{p}`"))?;
            if v < prev {
                return Err(format!("`latency_us.{class}` percentiles must be monotone"));
            }
            prev = v;
        }
    }
    match doc.get("warm_speedup") {
        Some(Json::Null) => {}
        Some(v) => {
            let x = v
                .as_num()
                .ok_or("`warm_speedup` must be a number or null")?;
            if !x.is_finite() || x <= 0.0 {
                return Err("warm_speedup must be positive and finite".to_string());
            }
        }
        None => return Err("missing `warm_speedup`".to_string()),
    }
    let cache = doc.get("cache").ok_or("missing `cache`")?;
    for s in ["programs", "traces", "cells"] {
        let store = cache.get(s).ok_or_else(|| format!("missing `cache.{s}`"))?;
        for k in ["hits", "misses", "evictions", "resident_bytes", "entries"] {
            store
                .get(k)
                .and_then(Json::as_exact_num)
                .ok_or_else(|| format!("missing or inexact `cache.{s}.{k}`"))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&s, 50.0), 50);
        assert_eq!(percentile(&s, 90.0), 90);
        assert_eq!(percentile(&s, 99.0), 99);
        assert_eq!(percentile(&[7], 99.0), 7);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn generated_sources_vary_and_parse() {
        let a = generated_source(1);
        let b = generated_source(2);
        assert_ne!(a.text, b.text);
        ucm_lang::parse(&a.text).expect("generated Mini must parse");
        ucm_lang::parse(&b.text).expect("generated Mini must parse");
    }

    #[test]
    fn report_json_round_trips_the_validator() {
        let report = LoadgenReport {
            seed: 7,
            requests: 10,
            cold_requests: 4,
            warm_requests: 6,
            elapsed_us: 123_456,
            throughput_rps: 81.0,
            overall: LatencyStats {
                p50_us: 10,
                p90_us: 20,
                p99_us: 30,
            },
            cold: LatencyStats {
                p50_us: 25,
                p90_us: 28,
                p99_us: 30,
            },
            warm: LatencyStats {
                p50_us: 5,
                p90_us: 6,
                p99_us: 7,
            },
            warm_speedup: Some(5.2),
            cache: StatsReply::default(),
        };
        validate_serve_json(&report.to_json()).expect("generated report must validate");

        // The validator actually rejects things.
        let broken = report
            .to_json()
            .replace("\"cold_requests\": 4", "\"cold_requests\": 5");
        assert!(validate_serve_json(&broken).is_err());
        let broken = report
            .to_json()
            .replace("\"schema_version\": 1", "\"schema_version\": 9");
        assert!(validate_serve_json(&broken).is_err());
        assert!(validate_serve_json("{}").is_err());
    }
}
