//! The wire protocol: JSON lines in both directions over a Unix socket.
//!
//! Requests are single-line JSON objects with an `"op"` discriminator;
//! responses are single-line JSON objects with `"ok"` plus an `"op"`
//! echo. A sweep response is a *stream* of lines — `start`, then the
//! artifact in order (`part` header, one `cell` per grid cell, `part`
//! footer), then `done` — so a client reassembles the artifact by
//! concatenating the text fields in arrival order and gets bytes
//! identical to `ucmc sweep`'s.
//!
//! Parsing is strict: unknown operations and unknown fields are typed
//! errors, not silently ignored — a client typo like `"seeed"` should
//! fail loudly rather than quietly sweep with the default seed. All
//! failures are [`RequestError`]s; the server never panics on hostile
//! input (the JSON parser itself is depth-bounded for the same reason).

use std::error::Error;
use std::fmt;

use ucm_bench::json::{self, escape, Json, JsonError};
use ucm_bench::sweep::Geometry;

/// Default cap on a single request line, in bytes. Far above any real
/// request (the largest committed workload source is a few KiB) and far
/// below anything that could pressure the server's memory.
pub const DEFAULT_MAX_REQUEST_BYTES: usize = 1 << 20;

/// A custom Mini source submitted with a sweep request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceSpec {
    /// Workload name recorded in the artifact.
    pub name: String,
    /// Mini source text.
    pub text: String,
}

/// A parsed sweep request.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRequest {
    /// `true` sweeps the full default grid, `false` the quick grid.
    pub full: bool,
    /// Replay every cell through the cycle-level timing model.
    pub timing: bool,
    /// Replacement-policy seed; `None` keeps the suite default.
    pub seed: Option<u64>,
    /// Replace the suite's workloads with one custom source.
    pub source: Option<SourceSpec>,
    /// Replace the suite's geometry axis.
    pub geometries: Option<Vec<Geometry>>,
    /// Drive stack-orderable cells through the stack-distance engine
    /// (the default; counters are identical either way).
    pub stack_distance: bool,
    /// Derive decisively-classified cells from the static must/may
    /// analysis instead of replay (the default; counters are identical
    /// either way).
    pub static_analysis: bool,
}

impl Default for SweepRequest {
    fn default() -> Self {
        SweepRequest {
            full: false,
            timing: false,
            seed: None,
            source: None,
            geometries: None,
            stack_distance: true,
            static_analysis: true,
        }
    }
}

/// A request line, parsed.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Cache and request counters.
    Stats,
    /// Stop accepting connections and exit the serve loop.
    Shutdown,
    /// Run (or replay from cache) a sweep.
    Sweep(SweepRequest),
}

/// A malformed request. Every variant maps to a typed `error` response
/// line; none of them kill the connection except where the stream
/// itself is unrecoverable (EOF mid-line).
#[derive(Debug)]
pub enum RequestError {
    /// The line exceeded the server's request-size cap.
    TooLarge {
        /// The configured cap in bytes.
        limit: usize,
    },
    /// The stream ended mid-line.
    Truncated,
    /// The line is not JSON.
    Json(JsonError),
    /// The line is JSON but not a valid request.
    Schema(String),
    /// The `op` field names no known operation.
    UnknownOp(String),
}

impl RequestError {
    /// Stable machine-readable kind, echoed in `error` responses.
    pub fn kind(&self) -> &'static str {
        match self {
            RequestError::TooLarge { .. } => "too-large",
            RequestError::Truncated => "truncated",
            RequestError::Json(_) => "json",
            RequestError::Schema(_) => "schema",
            RequestError::UnknownOp(_) => "unknown-op",
        }
    }
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::TooLarge { limit } => {
                write!(f, "request exceeds the {limit}-byte limit")
            }
            RequestError::Truncated => write!(f, "stream ended mid-request"),
            RequestError::Json(e) => write!(f, "request is not JSON: {e}"),
            RequestError::Schema(m) => write!(f, "invalid request: {m}"),
            RequestError::UnknownOp(op) => write!(f, "unknown op `{op}`"),
        }
    }
}

impl Error for RequestError {}

fn schema(msg: impl Into<String>) -> RequestError {
    RequestError::Schema(msg.into())
}

/// Fields an object is allowed to carry; anything else is a schema
/// error so typos fail loudly.
fn check_fields(obj: &Json, allowed: &[&str], what: &str) -> Result<(), RequestError> {
    if let Json::Obj(fields) = obj {
        for (k, _) in fields {
            if !allowed.contains(&k.as_str()) {
                return Err(schema(format!("unknown {what} field `{k}`")));
            }
        }
        Ok(())
    } else {
        Err(schema(format!("{what} must be an object")))
    }
}

fn get_bool(obj: &Json, key: &str, default: bool) -> Result<bool, RequestError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| schema(format!("`{key}` must be a boolean"))),
    }
}

fn get_str<'j>(obj: &'j Json, key: &str) -> Result<&'j str, RequestError> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| schema(format!("`{key}` must be a string")))
}

/// A non-negative integer that fits f64's exact range. Geometry sizes
/// and counts route through here.
fn exact_usize(v: &Json, key: &str) -> Result<usize, RequestError> {
    let n = v
        .as_exact_num()
        .ok_or_else(|| schema(format!("`{key}` must be an exact integer")))?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(schema(format!("`{key}` must be a non-negative integer")));
    }
    Ok(n as usize)
}

/// Parses one request line.
///
/// # Errors
///
/// Every way the line can be wrong maps to a [`RequestError`]; this
/// function never panics, whatever the bytes.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let doc = json::parse(line).map_err(RequestError::Json)?;
    if !matches!(doc, Json::Obj(_)) {
        return Err(schema("request must be a JSON object"));
    }
    let op = get_str(&doc, "op")?;
    match op {
        "ping" => {
            check_fields(&doc, &["op"], "ping")?;
            Ok(Request::Ping)
        }
        "stats" => {
            check_fields(&doc, &["op"], "stats")?;
            Ok(Request::Stats)
        }
        "shutdown" => {
            check_fields(&doc, &["op"], "shutdown")?;
            Ok(Request::Shutdown)
        }
        "sweep" => parse_sweep(&doc).map(Request::Sweep),
        other => Err(RequestError::UnknownOp(other.to_string())),
    }
}

fn parse_sweep(doc: &Json) -> Result<SweepRequest, RequestError> {
    check_fields(
        doc,
        &[
            "op",
            "suite",
            "timing",
            "seed",
            "source",
            "geometries",
            "stack_distance",
            "static_analysis",
        ],
        "sweep",
    )?;
    let full = match doc.get("suite") {
        None => false,
        Some(v) => match v.as_str() {
            Some("quick") => false,
            Some("full") => true,
            _ => return Err(schema("`suite` must be \"quick\" or \"full\"")),
        },
    };
    let timing = get_bool(doc, "timing", false)?;
    let stack_distance = get_bool(doc, "stack_distance", true)?;
    let static_analysis = get_bool(doc, "static_analysis", true)?;
    // The seed is an opaque u64, but JSON numbers live in f64: accept
    // only what f64 represents exactly so no request silently sweeps
    // with a rounded seed.
    let seed = match doc.get("seed") {
        None => None,
        Some(v) => {
            let n = v
                .as_exact_num()
                .ok_or_else(|| schema("`seed` must be an exact integer (within ±2^53)"))?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(schema("`seed` must be a non-negative integer"));
            }
            Some(n as u64)
        }
    };
    let source = match doc.get("source") {
        None => None,
        Some(s) => {
            check_fields(s, &["name", "text"], "source")?;
            let name = get_str(s, "name")?;
            if name.is_empty() {
                return Err(schema("`source.name` must be non-empty"));
            }
            Some(SourceSpec {
                name: name.to_string(),
                text: get_str(s, "text")?.to_string(),
            })
        }
    };
    let geometries = match doc.get("geometries") {
        None => None,
        Some(v) => {
            let arr = v
                .as_arr()
                .ok_or_else(|| schema("`geometries` must be an array"))?;
            if arr.is_empty() {
                return Err(schema("`geometries` must be non-empty"));
            }
            let mut out = Vec::with_capacity(arr.len());
            for g in arr {
                check_fields(g, &["size_words", "line_words", "ways"], "geometry")?;
                out.push(Geometry {
                    size_words: exact_usize(
                        g.get("size_words").unwrap_or(&Json::Null),
                        "size_words",
                    )?,
                    line_words: exact_usize(
                        g.get("line_words").unwrap_or(&Json::Null),
                        "line_words",
                    )?,
                    ways: exact_usize(g.get("ways").unwrap_or(&Json::Null), "ways")?,
                });
            }
            Some(out)
        }
    };
    Ok(SweepRequest {
        full,
        timing,
        seed,
        source,
        geometries,
        stack_distance,
        static_analysis,
    })
}

impl SweepRequest {
    /// Serialises the request as one wire line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut s = String::from("{\"op\":\"sweep\"");
        s.push_str(&format!(
            ",\"suite\":\"{}\"",
            if self.full { "full" } else { "quick" }
        ));
        s.push_str(&format!(",\"timing\":{}", self.timing));
        s.push_str(&format!(",\"stack_distance\":{}", self.stack_distance));
        s.push_str(&format!(",\"static_analysis\":{}", self.static_analysis));
        if let Some(seed) = self.seed {
            s.push_str(&format!(",\"seed\":{seed}"));
        }
        if let Some(src) = &self.source {
            s.push_str(&format!(
                ",\"source\":{{\"name\":\"{}\",\"text\":\"{}\"}}",
                escape(&src.name),
                escape(&src.text)
            ));
        }
        if let Some(geoms) = &self.geometries {
            s.push_str(",\"geometries\":[");
            for (i, g) in geoms.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"size_words\":{},\"line_words\":{},\"ways\":{}}}",
                    g.size_words, g.line_words, g.ways
                ));
            }
            s.push(']');
        }
        s.push('}');
        s
    }
}

// ---- response lines -------------------------------------------------

/// `error` response line.
pub fn error_line(kind: &str, detail: &str) -> String {
    format!(
        "{{\"ok\":false,\"error\":{{\"kind\":\"{}\",\"detail\":\"{}\"}}}}",
        escape(kind),
        escape(detail)
    )
}

/// `pong` response line.
pub fn pong_line() -> String {
    "{\"ok\":true,\"op\":\"pong\"}".to_string()
}

/// `bye` response line (shutdown acknowledged).
pub fn bye_line() -> String {
    "{\"ok\":true,\"op\":\"bye\"}".to_string()
}

/// `start` response line opening a sweep stream.
pub fn start_line(cells: usize, traces: usize) -> String {
    format!("{{\"ok\":true,\"op\":\"start\",\"cells\":{cells},\"traces\":{traces}}}")
}

/// `part` response line carrying a non-cell artifact fragment.
pub fn part_line(text: &str) -> String {
    format!(
        "{{\"ok\":true,\"op\":\"part\",\"text\":\"{}\"}}",
        escape(text)
    )
}

/// `cell` response line carrying one artifact cell.
pub fn cell_line(index: usize, text: &str) -> String {
    format!(
        "{{\"ok\":true,\"op\":\"cell\",\"index\":{index},\"text\":\"{}\"}}",
        escape(text)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_round_trip() {
        assert_eq!(parse_request("{\"op\":\"ping\"}").unwrap(), Request::Ping);
        assert_eq!(parse_request("{\"op\":\"stats\"}").unwrap(), Request::Stats);
        assert_eq!(
            parse_request("{\"op\":\"shutdown\"}").unwrap(),
            Request::Shutdown
        );
        let req = SweepRequest {
            full: true,
            timing: true,
            seed: Some(7),
            source: Some(SourceSpec {
                name: "g".into(),
                text: "fn main() { print(1); }".into(),
            }),
            geometries: Some(vec![Geometry {
                size_words: 64,
                line_words: 1,
                ways: 1,
            }]),
            stack_distance: false,
            static_analysis: false,
        };
        let parsed = parse_request(&req.to_json_line()).unwrap();
        assert_eq!(parsed, Request::Sweep(req));
    }

    #[test]
    fn defaults_fill_in() {
        let parsed = parse_request("{\"op\":\"sweep\"}").unwrap();
        assert_eq!(parsed, Request::Sweep(SweepRequest::default()));
    }

    #[test]
    fn hostile_lines_get_typed_errors_not_panics() {
        let cases: &[(&str, &str)] = &[
            ("", "json"),
            ("{", "json"),
            ("[1,2]", "schema"),
            ("{\"op\":3}", "schema"),
            ("{\"op\":\"launch-missiles\"}", "unknown-op"),
            ("{\"op\":\"ping\",\"extra\":1}", "schema"),
            ("{\"op\":\"sweep\",\"seeed\":1}", "schema"),
            ("{\"op\":\"sweep\",\"suite\":\"exhaustive\"}", "schema"),
            ("{\"op\":\"sweep\",\"seed\":-1}", "schema"),
            ("{\"op\":\"sweep\",\"seed\":1.5}", "schema"),
            // 2^60: representable as f64 only approximately.
            ("{\"op\":\"sweep\",\"seed\":1152921504606846976}", "schema"),
            ("{\"op\":\"sweep\",\"geometries\":[]}", "schema"),
            ("{\"op\":\"sweep\",\"geometries\":[{}]}", "schema"),
            (
                "{\"op\":\"sweep\",\"geometries\":[{\"size_words\":64,\"line_words\":1,\"ways\":1,\"bogus\":2}]}",
                "schema",
            ),
            ("{\"op\":\"sweep\",\"source\":{\"name\":\"\",\"text\":\"\"}}", "schema"),
            ("{\"op\":\"sweep\",\"source\":{\"name\":\"x\"}}", "schema"),
        ];
        for (line, kind) in cases {
            let err = parse_request(line).expect_err(line);
            assert_eq!(err.kind(), *kind, "line: {line}");
        }
        // A deeply nested bomb is a typed JSON error (depth bound), not
        // a stack overflow.
        let bomb = format!("{}{}", "[".repeat(100_000), "]".repeat(100_000));
        assert_eq!(parse_request(&bomb).unwrap_err().kind(), "json");
    }

    #[test]
    fn response_lines_are_valid_single_line_json() {
        for line in [
            error_line("schema", "bad \"quote\"\nnewline"),
            pong_line(),
            bye_line(),
            start_line(20, 10),
            part_line("{\n  \"schema_version\": 2,\n"),
            cell_line(3, "    {\"workload\": \"sieve\"},\n"),
        ] {
            assert!(!line.contains('\n'), "line breaks framing: {line}");
            json::parse(&line).expect("response line must parse");
        }
    }
}
