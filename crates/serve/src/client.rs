//! A blocking client for the serve protocol.
//!
//! Reassembles a served sweep by concatenating the streamed fragments
//! in arrival order, which yields the artifact byte-for-byte as
//! `ucmc sweep` would have written it — the server sends the header
//! `part`, every `cell` in grid order, and the footer `part`, and the
//! client verifies the indices as it goes.

use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

use ucm_bench::json::{self, Json};

use crate::protocol::SweepRequest;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket I/O failed.
    Io(io::Error),
    /// The server broke the protocol (bad JSON, wrong op, bad order).
    Protocol(String),
    /// The server answered with a typed error.
    Server {
        /// Machine-readable kind (`schema`, `sweep`, ...).
        kind: String,
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket i/o: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ClientError::Server { kind, detail } => write!(f, "server error ({kind}): {detail}"),
        }
    }
}

impl Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

fn protocol(msg: impl Into<String>) -> ClientError {
    ClientError::Protocol(msg.into())
}

/// One store's counters out of a `stats` reply.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreStats {
    /// Lookups that found a resident entry.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Bytes currently resident.
    pub resident_bytes: u64,
    /// Entries currently resident.
    pub entries: u64,
}

/// Disk-layer counters out of a `stats` reply (present when the server
/// runs with `--cache-dir`).
#[derive(Debug, Clone, Copy, Default)]
pub struct DiskStats {
    /// Entries loaded into memory at server start.
    pub loaded: u64,
    /// Read-through lookups served from disk.
    pub hits: u64,
    /// Read-through lookups that found no file.
    pub misses: u64,
    /// Corrupt files dropped.
    pub corrupt: u64,
    /// Write-through attempts that failed.
    pub write_errors: u64,
}

/// A `stats` reply.
#[derive(Debug, Clone, Copy, Default)]
pub struct StatsReply {
    /// Operations the server has processed.
    pub requests: u64,
    /// Compile-stage store.
    pub programs: StoreStats,
    /// Record-stage store.
    pub traces: StoreStats,
    /// Replay-stage store.
    pub cells: StoreStats,
    /// Disk layer, when the server persists its cell store.
    pub disk: Option<DiskStats>,
}

/// A reassembled sweep reply.
#[derive(Debug, Clone)]
pub struct SweepReply {
    /// The complete artifact text, byte-identical to `ucmc sweep`'s.
    pub artifact: String,
    /// Number of grid cells.
    pub cells: usize,
    /// Whether the server computed anything (any store miss).
    pub cold: bool,
    /// Store hits charged to the request.
    pub hits: u64,
    /// Store misses charged to the request.
    pub misses: u64,
    /// Server-side wall time in microseconds.
    pub elapsed_us: u64,
}

/// A connected client.
pub struct Client {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Client {
    /// Connects to a serving socket.
    ///
    /// # Errors
    ///
    /// Socket I/O errors (no server, permission, ...).
    pub fn connect(socket: &Path) -> Result<Client, ClientError> {
        let writer = UnixStream::connect(socket)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    fn send(&mut self, line: &str) -> Result<(), ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        Ok(())
    }

    /// Reads one response line, surfacing server-side `error` lines as
    /// [`ClientError::Server`].
    fn read_reply(&mut self) -> Result<Json, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(protocol("server closed the connection"));
        }
        let doc = json::parse(line.trim_end())
            .map_err(|e| protocol(format!("unparseable response: {e}")))?;
        match doc.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(doc),
            Some(false) => {
                let err = doc.get("error");
                let field = |k: &str| {
                    err.and_then(|e| e.get(k))
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_string()
                };
                Err(ClientError::Server {
                    kind: field("kind"),
                    detail: field("detail"),
                })
            }
            None => Err(protocol("response without an `ok` field")),
        }
    }

    fn expect_op(doc: &Json, want: &str) -> Result<(), ClientError> {
        match doc.get("op").and_then(Json::as_str) {
            Some(op) if op == want => Ok(()),
            Some(op) => Err(protocol(format!("expected `{want}`, got `{op}`"))),
            None => Err(protocol("response without an `op` field")),
        }
    }

    fn get_u64(doc: &Json, key: &str) -> Result<u64, ClientError> {
        doc.get(key)
            .and_then(Json::as_exact_num)
            .filter(|n| *n >= 0.0 && n.fract() == 0.0)
            .map(|n| n as u64)
            .ok_or_else(|| protocol(format!("missing or non-integral `{key}`")))
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// I/O or protocol failures.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send("{\"op\":\"ping\"}")?;
        let doc = self.read_reply()?;
        Self::expect_op(&doc, "pong")
    }

    /// Fetches server counters.
    ///
    /// # Errors
    ///
    /// I/O or protocol failures.
    pub fn stats(&mut self) -> Result<StatsReply, ClientError> {
        self.send("{\"op\":\"stats\"}")?;
        let doc = self.read_reply()?;
        Self::expect_op(&doc, "stats")?;
        let cache = doc
            .get("cache")
            .ok_or_else(|| protocol("stats without `cache`"))?;
        let store = |name: &str| -> Result<StoreStats, ClientError> {
            let s = cache
                .get(name)
                .ok_or_else(|| protocol(format!("stats without `cache.{name}`")))?;
            Ok(StoreStats {
                hits: Self::get_u64(s, "hits")?,
                misses: Self::get_u64(s, "misses")?,
                evictions: Self::get_u64(s, "evictions")?,
                resident_bytes: Self::get_u64(s, "resident_bytes")?,
                entries: Self::get_u64(s, "entries")?,
            })
        };
        let disk = match cache.get("disk") {
            None => None,
            Some(d) => Some(DiskStats {
                loaded: Self::get_u64(d, "loaded")?,
                hits: Self::get_u64(d, "hits")?,
                misses: Self::get_u64(d, "misses")?,
                corrupt: Self::get_u64(d, "corrupt")?,
                write_errors: Self::get_u64(d, "write_errors")?,
            }),
        };
        Ok(StatsReply {
            requests: Self::get_u64(&doc, "requests")?,
            programs: store("programs")?,
            traces: store("traces")?,
            cells: store("cells")?,
            disk,
        })
    }

    /// Asks the server to shut down.
    ///
    /// # Errors
    ///
    /// I/O or protocol failures.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.send("{\"op\":\"shutdown\"}")?;
        let doc = self.read_reply()?;
        Self::expect_op(&doc, "bye")
    }

    /// Submits a sweep and reassembles the streamed artifact.
    ///
    /// # Errors
    ///
    /// I/O and protocol failures, plus typed server errors (bad
    /// source, bad grid).
    pub fn sweep(&mut self, req: &SweepRequest) -> Result<SweepReply, ClientError> {
        self.send(&req.to_json_line())?;
        let start = self.read_reply()?;
        Self::expect_op(&start, "start")?;
        let cells = Self::get_u64(&start, "cells")? as usize;

        let text_of = |doc: &Json| -> Result<String, ClientError> {
            doc.get("text")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| protocol("fragment without `text`"))
        };

        let mut artifact = String::new();
        let header = self.read_reply()?;
        Self::expect_op(&header, "part")?;
        artifact.push_str(&text_of(&header)?);
        for want in 0..cells {
            let cell = self.read_reply()?;
            Self::expect_op(&cell, "cell")?;
            let index = Self::get_u64(&cell, "index")? as usize;
            if index != want {
                return Err(protocol(format!("cell {index} arrived in slot {want}")));
            }
            artifact.push_str(&text_of(&cell)?);
        }
        let footer = self.read_reply()?;
        Self::expect_op(&footer, "part")?;
        artifact.push_str(&text_of(&footer)?);

        let done = self.read_reply()?;
        Self::expect_op(&done, "done")?;
        let cold = done
            .get("cold")
            .and_then(Json::as_bool)
            .ok_or_else(|| protocol("done without `cold`"))?;
        Ok(SweepReply {
            artifact,
            cells,
            cold,
            hits: Self::get_u64(&done, "hits")?,
            misses: Self::get_u64(&done, "misses")?,
            elapsed_us: Self::get_u64(&done, "elapsed_us")?,
        })
    }
}
