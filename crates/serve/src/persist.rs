//! Disk persistence for the cell store: the artifact cache survives
//! restarts behind `ucmc serve --cache-dir`.
//!
//! Only the **cell** store persists. Cells are where the compute lives —
//! a replayed cell is O(trace-length) to recompute but ~200 bytes to
//! keep — while programs and trace groups are seconds to rebuild and
//! would need a full serialisation story for [`ucm_machine`] types.
//! A warm restart therefore re-records each workload's trace once and
//! then serves every cell from disk.
//!
//! The layout is one file per cell under `<dir>/cells/`, named by the
//! entry's content hash ([`Digest`], 32 hex digits), holding a small
//! versioned binary record ([`encode_cell`]). Properties the server
//! relies on:
//!
//! * **load-on-start** — [`DiskCache::load`] reads every entry into the
//!   in-memory store, so a warm restart's first sweep is all hits;
//! * **write-through** — every insert writes a temp file and renames it
//!   into place, so readers (and a crash mid-write) never observe a
//!   partial entry;
//! * **corrupt entry = miss** — a file that fails the magic, version,
//!   or length check is deleted and treated as absent, never an error:
//!   the entry recomputes and overwrites it.
//!
//! Keys already capture every result-affecting input (see
//! [`crate::hash`]), which is what makes cross-restart reuse sound: a
//! stale binary or changed grid produces different keys, not wrong
//! hits. The format version is bumped whenever the counter layout
//! changes; old-version files simply miss.

use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use ucm_bench::sweep::CellTiming;
use ucm_cache::CacheStats;

use crate::cache::CachedCell;
use crate::hash::Digest;

const MAGIC: &[u8; 4] = b"UCEL";
const VERSION: u16 = 1;
/// `u64` counters in [`CacheStats`], in declaration order.
const STATS_WORDS: usize = 17;
/// `u64`-sized fields in [`CellTiming`] (`cpi` travels as its bit
/// pattern), in declaration order.
const TIMING_WORDS: usize = 7;
const HEADER_BYTES: usize = 4 + 2 + 1;

/// Counters for the disk layer, reported alongside the store counters
/// in the `stats` response.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskCounters {
    /// Entries loaded into memory at start.
    pub loaded: u64,
    /// Read-through lookups served from disk (memory had evicted).
    pub hits: u64,
    /// Read-through lookups that found no file.
    pub misses: u64,
    /// Files that failed validation and were dropped.
    pub corrupt: u64,
    /// Write-through attempts that failed (disk full, permissions);
    /// the in-memory entry is unaffected.
    pub write_errors: u64,
}

/// The disk layer behind `--cache-dir`.
pub struct DiskCache {
    cells: PathBuf,
    loaded: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    write_errors: AtomicU64,
    /// Distinguishes concurrent writers' temp files.
    temp_seq: AtomicU64,
}

impl DiskCache {
    /// Opens (creating if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// I/O errors creating `<dir>/cells`.
    pub fn open(dir: &Path) -> io::Result<DiskCache> {
        let cells = dir.join("cells");
        std::fs::create_dir_all(&cells)?;
        Ok(DiskCache {
            cells,
            loaded: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            temp_seq: AtomicU64::new(0),
        })
    }

    fn cell_path(&self, key: Digest) -> PathBuf {
        self.cells.join(format!("{key}"))
    }

    /// Reads every valid entry off disk (for load-on-start). Unparsable
    /// file names are ignored; corrupt contents are counted and the
    /// files removed.
    pub fn load(&self) -> Vec<(Digest, CachedCell)> {
        let mut out = Vec::new();
        let Ok(entries) = std::fs::read_dir(&self.cells) else {
            return out;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(key) = parse_digest(&name.to_string_lossy()) else {
                continue;
            };
            match std::fs::read(entry.path())
                .ok()
                .and_then(|b| decode_cell(&b))
            {
                Some(cell) => out.push((key, cell)),
                None => {
                    self.corrupt.fetch_add(1, Ordering::Relaxed);
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        self.loaded.store(out.len() as u64, Ordering::Relaxed);
        out
    }

    /// Read-through lookup: the memory store evicted (or never saw)
    /// this key but disk may still hold it.
    pub fn get(&self, key: Digest) -> Option<CachedCell> {
        let path = self.cell_path(key);
        match std::fs::read(&path) {
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Ok(bytes) => match decode_cell(&bytes) {
                Some(cell) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Some(cell)
                }
                None => {
                    self.corrupt.fetch_add(1, Ordering::Relaxed);
                    let _ = std::fs::remove_file(&path);
                    None
                }
            },
        }
    }

    /// Write-through insert: temp file + rename, so no reader and no
    /// crash can observe a partial entry. Failures are counted, not
    /// propagated — the in-memory entry still serves this process.
    pub fn put(&self, key: Digest, cell: &CachedCell) {
        let bytes = encode_cell(cell);
        let tmp = self.cells.join(format!(
            "{key}.tmp.{}",
            self.temp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let written = std::fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(&bytes))
            .and_then(|()| std::fs::rename(&tmp, self.cell_path(key)));
        if written.is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Counter snapshot.
    pub fn counters(&self) -> DiskCounters {
        DiskCounters {
            loaded: self.loaded.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
        }
    }
}

fn parse_digest(name: &str) -> Option<Digest> {
    if name.len() != 32 {
        return None;
    }
    u128::from_str_radix(name, 16).ok().map(Digest)
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serialises one cell entry. The counter order is the declaration
/// order of [`CacheStats`] and [`CellTiming`]; the layout tests pin the
/// field count so adding a counter forces a [`VERSION`] bump here.
pub fn encode_cell(cell: &CachedCell) -> Vec<u8> {
    let (s, timing) = cell;
    let mut out = Vec::with_capacity(HEADER_BYTES + (STATS_WORDS + TIMING_WORDS) * 8);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(timing.is_some() as u8);
    for v in [
        s.reads,
        s.writes,
        s.read_hits,
        s.write_hits,
        s.read_misses,
        s.write_misses,
        s.bypass_reads,
        s.bypass_writes,
        s.invalidates,
        s.dead_line_discards,
        s.dead_store_drops,
        s.fills,
        s.writebacks,
        s.words_from_memory,
        s.words_to_memory,
        s.bypass_words_from_memory,
        s.bypass_words_to_memory,
    ] {
        push_u64(&mut out, v);
    }
    if let Some(t) = timing {
        push_u64(&mut out, t.total_cycles);
        push_u64(&mut out, t.cpi.to_bits());
        push_u64(&mut out, t.bus_busy_cycles);
        push_u64(&mut out, t.read_stall_cycles);
        push_u64(&mut out, t.write_stall_cycles);
        push_u64(&mut out, t.hazard_stall_cycles);
        push_u64(&mut out, t.wb_peak);
    }
    out
}

/// Deserialises a cell entry; `None` (= corrupt, treated as a miss) on
/// any magic, version, flag, or length mismatch.
pub fn decode_cell(bytes: &[u8]) -> Option<CachedCell> {
    let payload = bytes.strip_prefix(MAGIC.as_slice())?;
    let (version, payload) = payload.split_first_chunk::<2>()?;
    if u16::from_le_bytes(*version) != VERSION {
        return None;
    }
    let (&flag, payload) = payload.split_first()?;
    let timed = match flag {
        0 => false,
        1 => true,
        _ => return None,
    };
    let words = STATS_WORDS + if timed { TIMING_WORDS } else { 0 };
    if payload.len() != words * 8 {
        return None;
    }
    let mut it = payload
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunks_exact yields 8 bytes")));
    let mut next = || it.next().expect("length checked above");
    let stats = CacheStats {
        reads: next(),
        writes: next(),
        read_hits: next(),
        write_hits: next(),
        read_misses: next(),
        write_misses: next(),
        bypass_reads: next(),
        bypass_writes: next(),
        invalidates: next(),
        dead_line_discards: next(),
        dead_store_drops: next(),
        fills: next(),
        writebacks: next(),
        words_from_memory: next(),
        words_to_memory: next(),
        bypass_words_from_memory: next(),
        bypass_words_to_memory: next(),
    };
    let timing = timed.then(|| CellTiming {
        total_cycles: next(),
        cpi: f64::from_bits(next()),
        bus_busy_cycles: next(),
        read_stall_cycles: next(),
        write_stall_cycles: next(),
        hazard_stall_cycles: next(),
        wb_peak: next(),
    });
    Some((stats, timing))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(timed: bool) -> CachedCell {
        // All-distinct values so a field-order slip cannot round-trip.
        let s = CacheStats {
            reads: 1,
            writes: 2,
            read_hits: 3,
            write_hits: 4,
            read_misses: 5,
            write_misses: 6,
            bypass_reads: 7,
            bypass_writes: 8,
            invalidates: 9,
            dead_line_discards: 10,
            dead_store_drops: 11,
            fills: 12,
            writebacks: 13,
            words_from_memory: 14,
            words_to_memory: 15,
            bypass_words_from_memory: 16,
            bypass_words_to_memory: 17,
        };
        let t = timed.then_some(CellTiming {
            total_cycles: 100,
            cpi: 1.25,
            bus_busy_cycles: 101,
            read_stall_cycles: 102,
            write_stall_cycles: 103,
            hazard_stall_cycles: 104,
            wb_peak: 105,
        });
        (s, t)
    }

    #[test]
    fn cells_round_trip_both_shapes() {
        for timed in [false, true] {
            let cell = sample(timed);
            assert_eq!(decode_cell(&encode_cell(&cell)), Some(cell));
        }
    }

    #[test]
    fn struct_growth_forces_a_version_bump() {
        // A new counter changes the struct size; this failing reminds
        // whoever adds it to extend the codec and bump VERSION.
        assert_eq!(std::mem::size_of::<CacheStats>(), STATS_WORDS * 8);
        assert_eq!(std::mem::size_of::<CellTiming>(), TIMING_WORDS * 8);
    }

    #[test]
    fn corruption_is_a_miss_not_a_panic() {
        let good = encode_cell(&sample(true));
        assert!(decode_cell(&[]).is_none());
        assert!(decode_cell(b"JUNK").is_none());
        assert!(decode_cell(&good[..good.len() - 1]).is_none(), "truncated");
        let mut wrong_version = good.clone();
        wrong_version[4] = 0xee;
        assert!(decode_cell(&wrong_version).is_none());
        let mut bad_flag = good.clone();
        bad_flag[6] = 7;
        assert!(decode_cell(&bad_flag).is_none());
        let mut extra = good.clone();
        extra.push(0);
        assert!(decode_cell(&extra).is_none(), "trailing bytes");
    }

    #[test]
    fn disk_cache_persists_and_survives_corruption() {
        let dir = std::env::temp_dir().join(format!("ucm-persist-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let disk = DiskCache::open(&dir).unwrap();
        let (k1, k2) = (Digest(1), Digest(2));
        disk.put(k1, &sample(false));
        disk.put(k2, &sample(true));
        assert_eq!(disk.get(k1), Some(sample(false)));
        assert_eq!(disk.get(Digest(99)), None);

        // A fresh handle (the restart) loads both entries.
        let disk2 = DiskCache::open(&dir).unwrap();
        let mut loaded = disk2.load();
        loaded.sort_by_key(|(k, _)| k.0);
        assert_eq!(loaded, vec![(k1, sample(false)), (k2, sample(true))]);
        assert_eq!(disk2.counters().loaded, 2);

        // Scribble over one entry: it misses, is deleted, and the next
        // load only sees the survivor.
        std::fs::write(dir.join("cells").join(format!("{k1}")), b"garbage").unwrap();
        assert_eq!(disk2.get(k1), None);
        assert_eq!(disk2.counters().corrupt, 1);
        let disk3 = DiskCache::open(&dir).unwrap();
        assert_eq!(disk3.load(), vec![(k2, sample(true))]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
