//! A long-running sweep/compile service with a content-addressed
//! artifact cache.
//!
//! `ucmc sweep` pays the whole pipeline — parse, compile, VM trace
//! recording, grid replay — on every invocation, even when nothing
//! changed. This crate keeps the pipeline warm in a server process:
//! clients submit Mini source plus a grid over a Unix socket (JSON
//! lines in both directions, [`protocol`]), the [`engine`] shards the
//! grid across a persistent worker pool, and every stage's result is
//! memoized in a content-addressed [`cache`]:
//!
//! * **programs** — canonical source × compiler options → compiled
//!   machine program;
//! * **traces** — (canonical source, codegen, modes, VM config) →
//!   the recorded trace group;
//! * **cells** — (trace, cache geometry, policies, timing config) →
//!   replayed counters.
//!
//! Keys are built from the content that determines the result
//! ([`hash`]), so a request that differs only in whitespace or comments
//! hits the same entries, while any result-affecting knob — management
//! mode, honor flags, timing config, replacement seed — lands in the
//! key and misses. A warm request touches no compiler, no VM, and no
//! simulator: it is three rounds of store probes plus artifact
//! assembly, and returns cells byte-identical to a one-shot
//! `ucmc sweep` (both paths funnel through
//! [`ucm_bench::sweep::assemble_report`] and the same serializer).
//!
//! [`server`] hosts the engine behind a Unix socket; [`client`] is the
//! matching blocking client; [`loadgen`] drives the server with a
//! seeded request mix and records throughput/latency percentiles into
//! a schema-versioned `BENCH_serve.json`.

pub mod cache;
pub mod client;
pub mod engine;
pub mod hash;
pub mod loadgen;
pub mod persist;
pub mod protocol;
pub mod server;
