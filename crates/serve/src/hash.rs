//! Content hashing for the artifact cache.
//!
//! Every store in [`crate::cache::ArtifactCache`] is keyed by a
//! [`Digest`] built with a [`KeyHasher`]: fields are fed as
//! `(tag, length, payload)` frames, so the encoding is *injective* —
//! two different field sequences can never produce the same byte
//! stream, and a collision would require the underlying hash itself to
//! collide. The hash is a pair of independently-seeded FNV-1a-64
//! streams concatenated into 128 bits: not cryptographic (a hostile
//! client could manufacture collisions, and then would only poison its
//! own results with another request's — the cache stores nothing
//! secret), but far past accidental-collision range for a
//! process-lifetime store.
//!
//! The compile-stage key starts from [`canonical_source`]: the source
//! is parsed and pretty-printed back, so whitespace and comments never
//! reach the hasher and formatting-only edits hit the same entry. The
//! print → reparse round-trip is pinned by the fuzzer's property tests,
//! which is what makes the canonical form safe to key on.

use ucm_lang::LangError;

/// A 128-bit content hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Digest(pub u128);

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

const FNV_PRIME: u64 = 0x100_0000_01b3;
/// The standard FNV-1a offset basis.
const BASIS_A: u64 = 0xcbf2_9ce4_8422_2325;
/// A second, independent basis (the standard basis hashed with itself)
/// so the two 64-bit streams never track each other.
const BASIS_B: u64 = 0x8a62_4caf_8631_7eff;

/// Builds a [`Digest`] from tagged, length-prefixed fields.
///
/// Each `field` call frames its payload as
/// `tag bytes · 0xff · payload length (LE u64) · payload bytes`; tags
/// are static strings that never contain `0xff`, so no two call
/// sequences serialise identically. Convenience methods cover the
/// scalar types the cache keys use.
#[derive(Debug, Clone)]
pub struct KeyHasher {
    a: u64,
    b: u64,
}

impl KeyHasher {
    /// Starts a hasher for one cache stage; the stage name is the first
    /// frame, so keys from different stores can never alias.
    pub fn new(stage: &'static str) -> Self {
        let mut h = KeyHasher {
            a: BASIS_A,
            b: BASIS_B,
        };
        h.frame(stage, &[]);
        h
    }

    fn bytes(&mut self, bs: &[u8]) {
        for &x in bs {
            self.a = (self.a ^ u64::from(x)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(x)).wrapping_mul(FNV_PRIME);
        }
    }

    fn frame(&mut self, tag: &'static str, payload: &[u8]) {
        self.bytes(tag.as_bytes());
        self.bytes(&[0xff]);
        self.bytes(&(payload.len() as u64).to_le_bytes());
        self.bytes(payload);
    }

    /// Feeds a string field.
    #[must_use]
    pub fn str(mut self, tag: &'static str, s: &str) -> Self {
        self.frame(tag, s.as_bytes());
        self
    }

    /// Feeds a `u64` field.
    #[must_use]
    pub fn u64(mut self, tag: &'static str, v: u64) -> Self {
        self.frame(tag, &v.to_le_bytes());
        self
    }

    /// Feeds an `i64` field.
    #[must_use]
    pub fn i64(mut self, tag: &'static str, v: i64) -> Self {
        self.frame(tag, &v.to_le_bytes());
        self
    }

    /// Feeds a `usize` field.
    #[must_use]
    pub fn usize(self, tag: &'static str, v: usize) -> Self {
        self.u64(tag, v as u64)
    }

    /// Feeds a boolean field.
    #[must_use]
    pub fn bool(self, tag: &'static str, v: bool) -> Self {
        self.u64(tag, u64::from(v))
    }

    /// Feeds a nested digest (e.g. the trace key inside a cell key).
    #[must_use]
    pub fn digest(mut self, tag: &'static str, d: Digest) -> Self {
        self.frame(tag, &d.0.to_le_bytes());
        self
    }

    /// Finishes the key.
    pub fn finish(self) -> Digest {
        Digest((u128::from(self.a) << 64) | u128::from(self.b))
    }
}

/// The whitespace/comment-insensitive canonical form of a Mini source:
/// parse, then pretty-print the AST back to text. Two sources that
/// differ only in formatting or comments canonicalise — and therefore
/// hash — identically; two sources that differ in any token the
/// compiler can see do not.
///
/// # Errors
///
/// Returns the parse error for source that is not Mini; the engine
/// surfaces it as a typed request failure.
pub fn canonical_source(src: &str) -> Result<String, Box<LangError>> {
    let program = ucm_lang::parse(src).map_err(Box::new)?;
    Ok(ucm_lang::print_program(&program))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_framing_is_injective() {
        // The classic concatenation ambiguity: ("ab","c") vs ("a","bc").
        let h1 = KeyHasher::new("t").str("x", "ab").str("y", "c").finish();
        let h2 = KeyHasher::new("t").str("x", "a").str("y", "bc").finish();
        assert_ne!(h1, h2);
        // Same payload bytes under a different tag differ.
        let h3 = KeyHasher::new("t").str("y", "ab").str("y", "c").finish();
        assert_ne!(h1, h3);
        // Different stages never alias.
        let h4 = KeyHasher::new("u").str("x", "ab").str("y", "c").finish();
        assert_ne!(h1, h4);
        // An empty string is distinct from an absent field.
        let h5 = KeyHasher::new("t").str("x", "").finish();
        let h6 = KeyHasher::new("t").finish();
        assert_ne!(h5, h6);
    }

    #[test]
    fn digests_are_stable() {
        let a = KeyHasher::new("t").u64("v", 7).finish();
        let b = KeyHasher::new("t").u64("v", 7).finish();
        assert_eq!(a, b);
        assert_ne!(a, KeyHasher::new("t").u64("v", 8).finish());
        // The two 64-bit halves are independent streams, not copies.
        let d = a.0;
        assert_ne!((d >> 64) as u64, d as u64);
    }

    #[test]
    fn canonical_source_ignores_whitespace_and_comments() {
        let a = canonical_source("fn main() { print(1 + 2); }").unwrap();
        let b =
            canonical_source("// a comment\nfn main()   {\n\n    print(1 + 2);   // trailing\n}\n")
                .unwrap();
        assert_eq!(a, b);
        // A token-level change is visible.
        let c = canonical_source("fn main() { print(1 + 3); }").unwrap();
        assert_ne!(a, c);
        // Not-Mini is a typed error, not a panic.
        assert!(canonical_source("fn main( {").is_err());
    }
}
