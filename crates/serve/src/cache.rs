//! The content-addressed artifact cache: three byte-budgeted LRU stores,
//! one per pipeline stage.
//!
//! | store      | key (see [`crate::engine`])                         | value                         |
//! |------------|-----------------------------------------------------|-------------------------------|
//! | `programs` | canonical source × codegen options × mode           | compiled [`MachineProgram`]   |
//! | `traces`   | canonical source × codegen × modes × VM config      | recorded trace group          |
//! | `cells`    | trace key × mode × full cell config × timing config | replayed counters (+ cycles)  |
//!
//! Each [`Store`] owns a byte budget and evicts **least-recently-used
//! first** (a hit refreshes recency) until a new entry fits. Hits,
//! misses, evictions, and resident bytes are counted per store;
//! `hits + misses == lookups` is a conservation identity the tests pin.
//! Entries larger than the whole budget are never admitted (counted as
//! `rejected`) — caching them would just evict everything else for a
//! value that cannot stay resident anyway.
//!
//! Sizes are *estimates* (packed-trace bytes, instruction counts), good
//! enough to bound resident memory; the exactness that matters — that an
//! evicted entry recomputes to byte-identical results — comes from every
//! store key containing every result-affecting input, which the
//! cache-key hygiene tests pin.

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::Arc;
use std::sync::Mutex;

use ucm_bench::sweep::{CellTiming, RecordedTrace};
use ucm_cache::CacheStats;
use ucm_machine::MachineProgram;

use crate::hash::Digest;
use crate::persist::{DiskCache, DiskCounters};

/// Counter snapshot of one store (or, summed, of the whole cache).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found a resident entry.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Insertions refused because the value alone exceeds the budget.
    pub rejected: u64,
    /// Bytes currently resident.
    pub resident_bytes: u64,
    /// Entries currently resident.
    pub entries: u64,
}

impl CacheCounters {
    /// Merges another store's counters into this one.
    pub fn add(&mut self, o: &CacheCounters) {
        self.hits += o.hits;
        self.misses += o.misses;
        self.evictions += o.evictions;
        self.rejected += o.rejected;
        self.resident_bytes += o.resident_bytes;
        self.entries += o.entries;
    }
}

struct Entry<V> {
    value: V,
    bytes: usize,
    /// Monotonic recency stamp; refreshed on every hit, so the minimum
    /// stamp is the least-recently-used entry.
    stamp: u64,
}

/// One byte-budgeted LRU store.
pub struct Store<V> {
    map: HashMap<u128, Entry<V>>,
    budget: usize,
    bytes: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    rejected: u64,
}

impl<V: Clone> Store<V> {
    /// An empty store with `budget` bytes of room.
    pub fn new(budget: usize) -> Self {
        Store {
            map: HashMap::new(),
            budget,
            bytes: 0,
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            rejected: 0,
        }
    }

    /// Looks up `key`, counting a hit or miss and refreshing recency.
    pub fn get(&mut self, key: Digest) -> Option<V> {
        self.clock += 1;
        match self.map.get_mut(&key.0) {
            Some(e) => {
                e.stamp = self.clock;
                self.hits += 1;
                Some(e.value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts `key → value`, evicting least-recently-used entries until
    /// the store fits its budget. Values larger than the whole budget
    /// are rejected (see module docs). Inserting an existing key
    /// replaces the entry.
    pub fn insert(&mut self, key: Digest, value: V, bytes: usize) {
        if bytes > self.budget {
            self.rejected += 1;
            return;
        }
        if let Some(old) = self.map.remove(&key.0) {
            self.bytes -= old.bytes;
        }
        // Evict oldest-first. The scan is O(entries), but eviction only
        // runs when the budget overflows and the stores hold at most a
        // few thousand entries — the replaced computation is milliseconds
        // to minutes, so a microsecond scan is noise.
        while self.bytes + bytes > self.budget {
            let oldest = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(&k, _)| k)
                .expect("bytes > 0 implies a resident entry");
            let evicted = self.map.remove(&oldest).expect("key from live iteration");
            self.bytes -= evicted.bytes;
            self.evictions += 1;
        }
        self.clock += 1;
        self.bytes += bytes;
        self.map.insert(
            key.0,
            Entry {
                value,
                bytes,
                stamp: self.clock,
            },
        );
    }

    /// Current counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            rejected: self.rejected,
            resident_bytes: self.bytes as u64,
            entries: self.map.len() as u64,
        }
    }
}

/// A compiled program plus the expected outputs its recording must
/// reproduce (for ad-hoc sources the first run's outputs, see
/// [`crate::engine`]).
pub type CachedProgram = Arc<MachineProgram>;

/// A recorded (workload, codegen) trace group: one [`RecordedTrace`] per
/// requested mode, behind an `Arc` so concurrent requests share it.
pub type CachedTraceGroup = Arc<Vec<RecordedTrace>>;

/// One replayed cell's counters (and cycles, for timed requests).
pub type CachedCell = (CacheStats, Option<CellTiming>);

/// Per-store counter snapshots.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArtifactCacheStats {
    /// Compile-stage store.
    pub programs: CacheCounters,
    /// Record-stage store.
    pub traces: CacheCounters,
    /// Replay-stage store.
    pub cells: CacheCounters,
    /// Disk-layer counters, when `--cache-dir` is active.
    pub disk: Option<DiskCounters>,
}

impl ArtifactCacheStats {
    /// All three stores summed.
    pub fn total(&self) -> CacheCounters {
        let mut t = CacheCounters::default();
        t.add(&self.programs);
        t.add(&self.traces);
        t.add(&self.cells);
        t
    }
}

/// The process-lifetime artifact cache.
///
/// The byte budget splits 15% / 60% / 25% across programs / traces /
/// cells: traces dominate resident bytes (8 bytes per dynamic
/// reference), programs are comparatively tiny, and cell results are a
/// couple hundred bytes each but numerous. Each store has its own lock;
/// the engine probes sequentially and computes misses outside any lock,
/// so a store lock is only ever held for a map operation.
pub struct ArtifactCache {
    programs: Mutex<Store<CachedProgram>>,
    traces: Mutex<Store<CachedTraceGroup>>,
    cells: Mutex<Store<CachedCell>>,
    /// Disk persistence for the cell store (`--cache-dir`); see
    /// [`crate::persist`] for why only cells persist.
    disk: Option<DiskCache>,
}

impl ArtifactCache {
    /// A cache splitting `budget_bytes` across the three stores.
    pub fn new(budget_bytes: usize) -> Self {
        ArtifactCache {
            programs: Mutex::new(Store::new(budget_bytes / 100 * 15)),
            traces: Mutex::new(Store::new(budget_bytes / 100 * 60)),
            cells: Mutex::new(Store::new(budget_bytes / 100 * 25)),
            disk: None,
        }
    }

    /// A cache whose cell store persists under `dir`: every entry on
    /// disk is loaded now (load-on-start), every insert writes through,
    /// and a memory-evicted key can still be served by a disk read.
    ///
    /// # Errors
    ///
    /// I/O errors creating the cache directory.
    pub fn with_disk(budget_bytes: usize, dir: &Path) -> io::Result<Self> {
        let mut cache = Self::new(budget_bytes);
        let disk = DiskCache::open(dir)?;
        {
            let mut cells = cache.cells.lock().unwrap();
            for (key, cell) in disk.load() {
                cells.insert(key, cell, CELL_BYTES);
            }
        }
        cache.disk = Some(disk);
        Ok(cache)
    }

    /// Compile-store lookup.
    pub fn program_get(&self, key: Digest) -> Option<CachedProgram> {
        self.programs.lock().unwrap().get(key)
    }

    /// Compile-store insert.
    pub fn program_put(&self, key: Digest, p: CachedProgram) {
        let bytes = program_bytes(&p);
        self.programs.lock().unwrap().insert(key, p, bytes);
    }

    /// Trace-store lookup.
    pub fn trace_get(&self, key: Digest) -> Option<CachedTraceGroup> {
        self.traces.lock().unwrap().get(key)
    }

    /// Trace-store insert.
    pub fn trace_put(&self, key: Digest, g: CachedTraceGroup) {
        let bytes = trace_group_bytes(&g);
        self.traces.lock().unwrap().insert(key, g, bytes);
    }

    /// Cell-store lookup: memory first, then (when persistent) a disk
    /// read-through that re-promotes the entry into memory.
    pub fn cell_get(&self, key: Digest) -> Option<CachedCell> {
        if let Some(c) = self.cells.lock().unwrap().get(key) {
            return Some(c);
        }
        let c = self.disk.as_ref()?.get(key)?;
        self.cells.lock().unwrap().insert(key, c, CELL_BYTES);
        Some(c)
    }

    /// Cell-store insert (write-through when persistent).
    pub fn cell_put(&self, key: Digest, c: CachedCell) {
        if let Some(disk) = &self.disk {
            disk.put(key, &c);
        }
        self.cells.lock().unwrap().insert(key, c, CELL_BYTES);
    }

    /// Counter snapshot across all stores.
    pub fn stats(&self) -> ArtifactCacheStats {
        ArtifactCacheStats {
            programs: self.programs.lock().unwrap().counters(),
            traces: self.traces.lock().unwrap().counters(),
            cells: self.cells.lock().unwrap().counters(),
            disk: self.disk.as_ref().map(DiskCache::counters),
        }
    }
}

/// Resident-byte charge for one cell entry: key + entry bookkeeping
/// dwarfs the value itself, so charge both.
const CELL_BYTES: usize = std::mem::size_of::<CachedCell>() + 64;

/// Estimated resident bytes of a compiled program.
fn program_bytes(p: &MachineProgram) -> usize {
    let instr = std::mem::size_of::<ucm_machine::MInstr>();
    p.funcs
        .iter()
        .map(|f| f.code.len() * instr + 96)
        .sum::<usize>()
        + p.globals_init.len() * 8
        + 128
}

/// Estimated resident bytes of a trace group: the packed traces
/// dominate at 8 bytes per record.
fn trace_group_bytes(g: &[RecordedTrace]) -> usize {
    g.iter()
        .map(|t| t.trace.events() as usize * 8 + t.workload.len() + 160)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> Digest {
        Digest(u128::from(n))
    }

    #[test]
    fn store_hits_misses_and_conservation() {
        let mut s: Store<u64> = Store::new(1000);
        let mut lookups = 0u64;
        assert_eq!(s.get(key(1)), None);
        lookups += 1;
        s.insert(key(1), 10, 100);
        assert_eq!(s.get(key(1)), Some(10));
        lookups += 1;
        assert_eq!(s.get(key(2)), None);
        lookups += 1;
        let c = s.counters();
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 2);
        assert_eq!(
            c.hits + c.misses,
            lookups,
            "conservation: hits+misses=lookups"
        );
        assert_eq!(c.resident_bytes, 100);
        assert_eq!(c.entries, 1);
    }

    #[test]
    fn eviction_is_least_recently_used_first() {
        let mut s: Store<u64> = Store::new(300);
        s.insert(key(1), 1, 100);
        s.insert(key(2), 2, 100);
        s.insert(key(3), 3, 100);
        // Touch 1 so 2 becomes the oldest.
        assert_eq!(s.get(key(1)), Some(1));
        s.insert(key(4), 4, 100);
        let c = s.counters();
        assert_eq!(c.evictions, 1);
        assert!(c.resident_bytes <= 300);
        // 2 (least recently used) is gone; 1, 3, 4 survive.
        assert_eq!(s.get(key(2)), None);
        assert_eq!(s.get(key(1)), Some(1));
        assert_eq!(s.get(key(3)), Some(3));
        assert_eq!(s.get(key(4)), Some(4));
    }

    #[test]
    fn filling_past_budget_drops_oldest_in_order() {
        let mut s: Store<u64> = Store::new(250);
        for n in 0..10 {
            s.insert(key(n), n, 100);
        }
        let c = s.counters();
        // Two entries fit; each further insert evicts exactly the oldest.
        assert_eq!(c.entries, 2);
        assert_eq!(c.evictions, 8);
        assert!(c.resident_bytes <= 250);
        for n in 0..8 {
            assert_eq!(s.get(key(n)), None, "entry {n} should have aged out");
        }
        assert_eq!(s.get(key(8)), Some(8));
        assert_eq!(s.get(key(9)), Some(9));
    }

    #[test]
    fn oversized_values_are_rejected_not_thrashed() {
        let mut s: Store<u64> = Store::new(100);
        s.insert(key(1), 1, 50);
        s.insert(key(2), 2, 101);
        let c = s.counters();
        assert_eq!(c.rejected, 1);
        assert_eq!(c.evictions, 0, "a rejected value must not evict residents");
        assert_eq!(s.get(key(1)), Some(1));
        assert_eq!(s.get(key(2)), None);
    }

    #[test]
    fn reinserting_a_key_replaces_without_double_counting() {
        let mut s: Store<u64> = Store::new(100);
        s.insert(key(1), 1, 60);
        s.insert(key(1), 2, 80);
        let c = s.counters();
        assert_eq!(c.entries, 1);
        assert_eq!(c.resident_bytes, 80);
        assert_eq!(s.get(key(1)), Some(2));
    }
}
