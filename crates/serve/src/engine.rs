//! The request engine: one sweep request in, one artifact out, every
//! pipeline stage memoized in the [`ArtifactCache`].
//!
//! A request becomes a [`SweepConfig`] and runs the *same* phases as
//! `run_sweep` — record, replay, assemble — but each phase first probes
//! its content-addressed store and computes only what is missing:
//!
//! 1. **canon** — every workload source is canonicalised
//!    ([`crate::hash::canonical_source`]) so formatting never reaches a
//!    key;
//! 2. **record** — one trace-group probe per (workload, codegen); a
//!    missing group records through
//!    [`ucm_bench::sweep::record_group_with`] with the compile step
//!    routed through the program store;
//! 3. **replay** — one cell probe per grid cell; missing cells replay
//!    through [`ucm_bench::sweep::replay_cells`], any subset of a grid
//!    block at a time;
//! 4. **assemble** — [`ucm_bench::sweep::assemble_report`] +
//!    [`SweepReport::to_json_parts`] produce the artifact fragments.
//!
//! Store probes are sequential (a warm request spawns no threads and
//! takes no lock longer than a map operation); only miss recompute fans
//! out across the worker pool. Because both the trace derivation and
//! the assembly are shared with the one-shot sweep, a served artifact
//! is byte-identical to `ucmc sweep`'s for the same grid — the
//! integration tests compare the two outputs byte for byte, cold and
//! warm.
//!
//! The one place the two paths differ internally: `run_sweep` collapses
//! behaviourally-equivalent traces before replay and copies their cell
//! blocks, while the engine keys every cell by its own trace and lets
//! the cell store absorb the duplication. Outputs are identical either
//! way; the byte-compare pins it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use rayon::prelude::*;
use ucm_bench::sweep::{
    assemble_report, record_group_with, replay_cells, stack_eligible, Codegen, SweepConfig,
    SweepError, SweepTimings,
};
use ucm_cache::{CacheConfig, TimingConfig};
use ucm_core::pipeline::{compile, CompilerOptions};
use ucm_lang::LangError;
use ucm_machine::{run, MachineProgram, NullSink};
use ucm_workloads::Workload;

use crate::cache::{ArtifactCache, ArtifactCacheStats, CachedCell, CachedTraceGroup};
use crate::hash::{canonical_source, Digest, KeyHasher};
use crate::protocol::SweepRequest;
use std::sync::Arc;

/// A failed request.
#[derive(Debug)]
pub enum EngineError {
    /// A submitted source is not Mini.
    Source {
        /// Workload name.
        workload: String,
        /// The parse error.
        error: Box<LangError>,
    },
    /// The sweep itself failed (compile, VM trap, output mismatch, bad
    /// geometry, empty grid).
    Sweep(SweepError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Source { workload, error } => {
                write!(f, "parsing `{workload}`: {error}")
            }
            EngineError::Sweep(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl EngineError {
    /// Stable machine-readable kind for `error` response lines.
    pub fn kind(&self) -> &'static str {
        match self {
            EngineError::Source { .. } => "source",
            EngineError::Sweep(_) => "sweep",
        }
    }
}

impl From<SweepError> for EngineError {
    fn from(e: SweepError) -> Self {
        EngineError::Sweep(e)
    }
}

/// Wall-clock phase breakdown of one request, in microseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestPhases {
    /// Source canonicalisation and key derivation.
    pub canon_us: u64,
    /// Trace-store probes plus any recording.
    pub record_us: u64,
    /// Cell-store probes plus any replay.
    pub replay_us: u64,
    /// Report assembly and serialisation.
    pub assemble_us: u64,
}

/// The result of one sweep request: the artifact in streamable
/// fragments, plus everything the `done` line reports.
pub struct SweepOutcome {
    /// Artifact header (everything before the first cell).
    pub header: String,
    /// One artifact line per grid cell, in grid order.
    pub cells: Vec<String>,
    /// Artifact footer (everything after the last cell).
    pub footer: String,
    /// Number of recorded traces behind the artifact.
    pub traces: usize,
    /// Whether anything had to be computed (any store miss).
    pub cold: bool,
    /// Store hits charged to this request.
    pub hits: u64,
    /// Store misses charged to this request.
    pub misses: u64,
    /// Phase timings.
    pub phases: RequestPhases,
}

/// Per-request hit/miss tally, shared with worker threads during miss
/// recompute. The cache's own counters are global across requests;
/// these are this request's alone.
#[derive(Default)]
struct Tally {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Tally {
    fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
    fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }
}

/// The serve engine: the artifact cache plus the worker pool.
///
/// Shared across connections behind an `Arc`; all state is internally
/// synchronised.
pub struct Engine {
    cache: ArtifactCache,
    pool: Option<rayon::ThreadPool>,
    requests: AtomicU64,
    /// Lazily-built suite templates. Constructing a suite runs every
    /// workload's native Rust reference to compute its expected
    /// outputs — far too expensive to repeat per request (it would
    /// dominate the warm path); built once, cloned per request.
    quick_template: std::sync::OnceLock<SweepConfig>,
    full_template: std::sync::OnceLock<SweepConfig>,
}

impl Engine {
    /// An engine with `jobs` worker threads (`0` = all cores) and a
    /// `cache_bytes` artifact-cache budget.
    pub fn new(jobs: usize, cache_bytes: usize) -> Self {
        Self::with_cache(jobs, ArtifactCache::new(cache_bytes))
    }

    /// [`Engine::new`] with a caller-built cache — how `--cache-dir`
    /// hands in a disk-persistent one.
    pub fn with_cache(jobs: usize, cache: ArtifactCache) -> Self {
        let pool = if jobs == 0 {
            None
        } else {
            Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(jobs)
                    .build()
                    .expect("vendored pool build is infallible"),
            )
        };
        Engine {
            cache,
            pool,
            requests: AtomicU64::new(0),
            quick_template: std::sync::OnceLock::new(),
            full_template: std::sync::OnceLock::new(),
        }
    }

    /// Runs `f` inside the worker pool (or inline when unconstrained).
    fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        match &self.pool {
            Some(p) => p.install(f),
            None => f(),
        }
    }

    /// Requests served so far (all operations).
    pub fn requests(&self) -> u64 {
        self.requests.fetch_add(0, Ordering::Relaxed)
    }

    /// Counts one served operation.
    pub fn count_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Cache counter snapshot.
    pub fn cache_stats(&self) -> ArtifactCacheStats {
        self.cache.stats()
    }

    /// Serves one sweep request.
    ///
    /// # Errors
    ///
    /// [`EngineError::Source`] for a custom source that is not Mini;
    /// [`EngineError::Sweep`] for everything the one-shot sweep can
    /// fail with.
    pub fn sweep(&self, req: &SweepRequest) -> Result<SweepOutcome, EngineError> {
        let tally = Tally::default();

        // ---- build the sweep configuration --------------------------
        let mut cfg = if req.full {
            self.full_template.get_or_init(SweepConfig::full).clone()
        } else {
            self.quick_template.get_or_init(SweepConfig::quick).clone()
        };
        cfg.timing = req.timing.then(TimingConfig::default);
        cfg.use_stack_distance = req.stack_distance;
        cfg.use_static_analysis = req.static_analysis;
        if let Some(seed) = req.seed {
            cfg.seed = seed;
        }
        if let Some(geoms) = &req.geometries {
            cfg.geometries = geoms.clone();
        }
        if let Some(src) = &req.source {
            cfg.suite = "custom".to_string();
            // Expected outputs are unknown for ad-hoc source; the
            // record phase derives them from a reference run, after
            // which the recorded modes cross-check each other exactly
            // like suite workloads do.
            cfg.workloads = vec![Workload {
                name: src.name.clone(),
                source: src.text.clone(),
                expected: Vec::new(),
            }];
        }
        if cfg.cell_count() == 0 {
            return Err(SweepError::EmptyGrid.into());
        }
        for &geom in &cfg.geometries {
            for &wp in &cfg.write_policies {
                for &policy in &cfg.policies {
                    cfg.cell_cache(ucm_core::ManagementMode::Unified, geom, wp, policy)
                        .validate()
                        .map_err(SweepError::from)?;
                }
            }
        }

        // ---- canon: canonical sources and group keys ----------------
        let canon_start = Instant::now();
        let mut canon = Vec::with_capacity(cfg.workloads.len());
        for w in &cfg.workloads {
            canon.push(
                canonical_source(&w.source).map_err(|error| EngineError::Source {
                    workload: w.name.clone(),
                    error,
                })?,
            );
        }
        let mut groups: Vec<(usize, Codegen, Digest)> = Vec::new();
        for (wi, w) in cfg.workloads.iter().enumerate() {
            for &cg in &cfg.codegens {
                groups.push((wi, cg, trace_group_key(&canon[wi], w, cg, &cfg)));
            }
        }
        let canon_took = canon_start.elapsed();
        ucm_obs::span_measured("serve.canon", canon_start, canon_took);

        // ---- record: probe trace groups, record the misses ----------
        let record_start = Instant::now();
        let mut group_traces: Vec<Option<CachedTraceGroup>> = groups
            .iter()
            .map(|&(_, _, key)| {
                let g = self.cache.trace_get(key);
                if g.is_some() {
                    tally.hit();
                } else {
                    tally.miss();
                }
                g
            })
            .collect();
        let missing: Vec<usize> = (0..groups.len())
            .filter(|&gi| group_traces[gi].is_none())
            .collect();
        if !missing.is_empty() {
            let recorded: Vec<(usize, Result<CachedTraceGroup, EngineError>)> =
                self.install(|| {
                    missing
                        .par_iter()
                        .map(|&gi| {
                            let (wi, cg, _) = groups[gi];
                            let _s = ucm_obs::span("serve.record.job")
                                .with("workload", cfg.workloads[wi].name.as_str());
                            (
                                gi,
                                self.record_group_cached(
                                    &cfg,
                                    &cfg.workloads[wi],
                                    &canon[wi],
                                    cg,
                                    &tally,
                                )
                                .map(Arc::new),
                            )
                        })
                        .collect()
                });
            for (gi, r) in recorded {
                let g = r?;
                self.cache.trace_put(groups[gi].2, Arc::clone(&g));
                group_traces[gi] = Some(g);
            }
        }
        // Flatten to (workload, codegen, mode) order — group order is
        // already (workload outer, codegen inner), matching run_sweep.
        let mut traces = Vec::with_capacity(groups.len() * cfg.modes.len());
        for g in &group_traces {
            let g = g.as_ref().expect("misses recorded above");
            assert_eq!(g.len(), cfg.modes.len(), "one trace per mode");
            traces.extend(g.iter().cloned());
        }
        let record_took = record_start.elapsed();
        ucm_obs::span_measured("serve.record", record_start, record_took);

        // ---- replay: probe cells, replay the misses -----------------
        let replay_start = Instant::now();
        struct MissCell {
            slot: usize,
            cell: CacheConfig,
            key: Digest,
        }
        let n_modes = cfg.modes.len();
        let mut stats: Vec<Option<CachedCell>> = vec![None; cfg.cell_count()];
        let mut misses_by_trace: Vec<Vec<MissCell>> =
            (0..traces.len()).map(|_| Vec::new()).collect();
        let mut slot = 0;
        for (ti, t) in traces.iter().enumerate() {
            let gkey = groups[ti / n_modes].2;
            for &geom in &cfg.geometries {
                for &wp in &cfg.write_policies {
                    for &policy in &cfg.policies {
                        let cell = cfg.cell_cache(t.mode, geom, wp, policy);
                        let key = cell_key(gkey, ti % n_modes, cell, cfg.timing);
                        if let Some(v) = self.cache.cell_get(key) {
                            tally.hit();
                            stats[slot] = Some(v);
                        } else {
                            tally.miss();
                            misses_by_trace[ti].push(MissCell { slot, cell, key });
                        }
                        slot += 1;
                    }
                }
            }
        }
        let mut todo: Vec<(usize, Vec<MissCell>)> = misses_by_trace
            .into_iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .collect();
        // The static-analysis fast path serves whatever missing untimed
        // cells it can derive exactly; derived results enter the cell
        // store like replayed ones (they are byte-identical by
        // construction), and only the remainder replays.
        let mut analysis_cells = 0usize;
        if cfg.use_static_analysis && cfg.timing.is_none() && !todo.is_empty() {
            let derived: Vec<(usize, Vec<Option<ucm_cache::CacheStats>>)> = self.install(|| {
                todo.par_iter()
                    .map(|(ti, cells)| {
                        let t = &traces[*ti];
                        let cfgs: Vec<CacheConfig> = cells.iter().map(|m| m.cell).collect();
                        let _s = ucm_obs::span("serve.analyze.job")
                            .with("workload", t.workload.as_str());
                        (
                            *ti,
                            ucm_bench::analysis::derive_cells_with(
                                &t.program,
                                t.profile.as_ref(),
                                t.mem_words,
                                &cfgs,
                            ),
                        )
                    })
                    .collect()
            });
            let by_trace: std::collections::HashMap<usize, Vec<Option<ucm_cache::CacheStats>>> =
                derived.into_iter().collect();
            for (ti, cells) in &mut todo {
                let ds = &by_trace[ti];
                let mut remaining = Vec::with_capacity(cells.len());
                for (m, d) in std::mem::take(cells).into_iter().zip(ds) {
                    match d {
                        Some(s) => {
                            analysis_cells += 1;
                            let r = (*s, None);
                            self.cache.cell_put(m.key, r);
                            stats[m.slot] = Some(r);
                        }
                        None => remaining.push(m),
                    }
                }
                *cells = remaining;
            }
            todo.retain(|(_, v)| !v.is_empty());
        }
        let (mut stack_cells, mut fused_cells) = (0usize, 0usize);
        for (_, cells) in &todo {
            for m in cells {
                if cfg.use_stack_distance && stack_eligible(m.cell) {
                    stack_cells += 1;
                } else {
                    fused_cells += 1;
                }
            }
        }
        if !todo.is_empty() {
            let replayed: Vec<(usize, Vec<CachedCell>)> = self.install(|| {
                todo.par_iter()
                    .map(|(ti, cells)| {
                        let t = &traces[*ti];
                        let cfgs: Vec<CacheConfig> = cells.iter().map(|m| m.cell).collect();
                        (
                            *ti,
                            replay_cells(
                                &t.trace,
                                &cfgs,
                                cfg.timing,
                                t.steps,
                                cfg.use_stack_distance,
                            ),
                        )
                    })
                    .collect()
            });
            let mut results: std::collections::HashMap<usize, Vec<CachedCell>> =
                replayed.into_iter().collect();
            for (ti, cells) in &todo {
                let rs = results.remove(ti).expect("one result batch per trace");
                for (m, r) in cells.iter().zip(rs) {
                    self.cache.cell_put(m.key, r);
                    stats[m.slot] = Some(r);
                }
            }
        }
        let replay_took = replay_start.elapsed();
        ucm_obs::span_measured("serve.replay", replay_start, replay_took);

        // ---- assemble -----------------------------------------------
        let assemble_start = Instant::now();
        let stats: Vec<CachedCell> = stats
            .into_iter()
            .map(|s| s.expect("every cell probed or replayed"))
            .collect();
        let report = assemble_report(
            &cfg,
            &traces,
            &stats,
            SweepTimings {
                record: record_took,
                replay: replay_took,
                stack_cells,
                fused_cells,
                analysis_cells,
            },
        );
        let (header, cells, footer) = report.to_json_parts();
        let assemble_took = assemble_start.elapsed();
        ucm_obs::span_measured("serve.assemble", assemble_start, assemble_took);

        let hits = tally.hits.load(Ordering::Relaxed);
        let misses = tally.misses.load(Ordering::Relaxed);
        ucm_obs::counter("serve.request.hits", hits);
        ucm_obs::counter("serve.request.misses", misses);
        Ok(SweepOutcome {
            header,
            cells,
            footer,
            traces: traces.len(),
            cold: misses > 0,
            hits,
            misses,
            phases: RequestPhases {
                canon_us: canon_took.as_micros() as u64,
                record_us: record_took.as_micros() as u64,
                replay_us: replay_took.as_micros() as u64,
                assemble_us: assemble_took.as_micros() as u64,
            },
        })
    }

    /// Records one (workload, codegen) group with compiles routed
    /// through the program store. For ad-hoc sources (empty `expected`)
    /// the first compiled mode runs once as the reference to fix the
    /// expected outputs; the recorded modes then cross-check against
    /// them exactly as suite workloads do.
    fn record_group_cached(
        &self,
        cfg: &SweepConfig,
        w: &Workload,
        canon: &str,
        cg: Codegen,
        tally: &Tally,
    ) -> Result<Vec<ucm_bench::sweep::RecordedTrace>, EngineError> {
        let compile_cached =
            |w: &Workload, cg: Codegen, mode| -> Result<Arc<MachineProgram>, SweepError> {
                let options = CompilerOptions {
                    mode,
                    ..cg.options()
                };
                let key = program_key(canon, &options);
                if let Some(p) = self.cache.program_get(key) {
                    tally.hit();
                    return Ok(p);
                }
                tally.miss();
                let compiled =
                    compile(&w.source, &options).map_err(|error| SweepError::Compile {
                        workload: w.name.clone(),
                        error,
                    })?;
                let p = Arc::new(compiled.program);
                self.cache.program_put(key, Arc::clone(&p));
                Ok(p)
            };
        let patched;
        let w = if w.expected.is_empty() {
            let program = compile_cached(w, cg, cfg.modes[0])?;
            let outcome =
                run(&program, &mut NullSink, &cfg.vm).map_err(|error| SweepError::Vm {
                    workload: w.name.clone(),
                    error,
                })?;
            patched = Workload {
                expected: outcome.output,
                ..w.clone()
            };
            &patched
        } else {
            w
        };
        Ok(record_group_with(
            w,
            cg,
            &cfg.modes,
            &cfg.vm,
            compile_cached,
        )?)
    }
}

// ---- key derivation -------------------------------------------------
//
// Every input that can change the stage's result is framed into the
// key; the hygiene tests pin both directions (formatting-only changes
// collide, result-affecting changes do not).

/// Compile-stage key: canonical source × every compiler option. The
/// guided-bypass option rewrites the emitted program, so its entire
/// cache configuration is framed when present.
pub fn program_key(canon_source: &str, o: &CompilerOptions) -> Digest {
    let mut h = KeyHasher::new("program")
        .str("src", canon_source)
        .usize("num_regs", o.num_regs)
        .str("strategy", strategy_name(o.strategy))
        .str("mode", mode_name(o.mode))
        .i64("globals_base", o.globals_base)
        .bool("loop_promotion", o.loop_promotion)
        .bool("local_promotion", o.local_promotion)
        .bool("promote_scalars", o.promote_scalars)
        .bool("guided_bypass", o.guided_bypass.is_some());
    if let Some(g) = &o.guided_bypass {
        h = h
            .usize("guided_size_words", g.cache.size_words)
            .usize("guided_line_words", g.cache.line_words)
            .usize("guided_associativity", g.cache.associativity)
            .str("guided_policy", policy_name(g.cache.policy))
            .str(
                "guided_write_policy",
                write_policy_name(g.cache.write_policy),
            )
            .bool("guided_honor_tags", g.cache.honor_tags)
            .bool("guided_honor_last_ref", g.cache.honor_last_ref)
            .u64("guided_seed", g.cache.seed)
            .usize("guided_mem_words", g.mem_words);
    }
    h.finish()
}

/// Record-stage key: one (workload, codegen) trace group. The workload
/// name and expected outputs are part of the artifact and the
/// recording's cross-check respectively, so both are framed; modes and
/// the VM configuration determine what gets recorded.
pub fn trace_group_key(canon_source: &str, w: &Workload, cg: Codegen, cfg: &SweepConfig) -> Digest {
    let mut h = KeyHasher::new("trace")
        .str("src", canon_source)
        .str("name", &w.name)
        .usize("n_expected", w.expected.len());
    for &x in &w.expected {
        h = h.i64("expected", x);
    }
    h = h
        .str("codegen", codegen_name(cg))
        .usize("n_modes", cfg.modes.len());
    for &m in &cfg.modes {
        h = h.str("mode", mode_name(m));
    }
    h.usize("mem_words", cfg.vm.mem_words)
        .u64("max_steps", cfg.vm.max_steps)
        .bool("trace_fetches", cfg.vm.trace_fetches)
        .finish()
}

/// Replay-stage key: the trace (via its group key and mode index) plus
/// the complete cell configuration — geometry, policies, honor flags,
/// seed — and the timing model when the request is timed. The latency
/// model is *not* framed: AMAT and ratios are derived at assembly from
/// the stored counters, so latency cannot change what this store holds.
pub fn cell_key(
    trace_key: Digest,
    mode_index: usize,
    cell: CacheConfig,
    timing: Option<TimingConfig>,
) -> Digest {
    let mut h = KeyHasher::new("cell")
        .digest("trace", trace_key)
        .usize("mode_index", mode_index)
        .usize("size_words", cell.size_words)
        .usize("line_words", cell.line_words)
        .usize("associativity", cell.associativity)
        .str("policy", policy_name(cell.policy))
        .str("write_policy", write_policy_name(cell.write_policy))
        .bool("honor_tags", cell.honor_tags)
        .bool("honor_last_ref", cell.honor_last_ref)
        .u64("seed", cell.seed);
    if let Some(t) = timing {
        h = h
            .u64("hit_cycles", t.hit_cycles)
            .u64("mem_word_cycles", t.mem_word_cycles)
            .usize("write_buffer_entries", t.write_buffer_entries)
            .u64("issue_cycles", t.issue_cycles);
    }
    h.finish()
}

fn strategy_name(s: ucm_regalloc::Strategy) -> &'static str {
    match s {
        ucm_regalloc::Strategy::Coloring => "coloring",
        ucm_regalloc::Strategy::UsageCount => "usage-count",
    }
}

fn mode_name(m: ucm_core::ManagementMode) -> &'static str {
    match m {
        ucm_core::ManagementMode::Unified => "unified",
        ucm_core::ManagementMode::Conventional => "conventional",
        ucm_core::ManagementMode::Safe => "safe",
    }
}

fn codegen_name(cg: Codegen) -> &'static str {
    match cg {
        Codegen::Paper => "paper",
        Codegen::Modern => "modern",
    }
}

fn policy_name(p: ucm_cache::PolicyKind) -> &'static str {
    match p {
        ucm_cache::PolicyKind::Lru => "lru",
        ucm_cache::PolicyKind::OneBitLru => "1-bit-lru",
        ucm_cache::PolicyKind::Fifo => "fifo",
        ucm_cache::PolicyKind::Random => "random",
    }
}

fn write_policy_name(w: ucm_cache::WritePolicy) -> &'static str {
    match w {
        ucm_cache::WritePolicy::WriteBackAllocate => "write-back",
        ucm_cache::WritePolicy::WriteThroughNoAllocate => "write-through",
    }
}
