//! End-to-end serve tests: byte parity with the one-shot sweep, cache
//! warmth, key hygiene, eviction correctness, the socket protocol, and
//! the load generator.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Instant;

use ucm_bench::json::{self, Json};
use ucm_bench::sweep::{run_sweep, Geometry, SweepConfig};
use ucm_cache::TimingConfig;
use ucm_core::{CompilerOptions, ManagementMode};
use ucm_serve::client::Client;
use ucm_serve::engine::{cell_key, program_key, trace_group_key, Engine};
use ucm_serve::hash::canonical_source;
use ucm_serve::loadgen::{run_loadgen, validate_serve_json, LoadgenConfig};
use ucm_serve::protocol::{SourceSpec, SweepRequest};
use ucm_serve::server::{ServeConfig, Server};
use ucm_workloads::Workload;

fn concat(out: &ucm_serve::engine::SweepOutcome) -> String {
    let mut s = out.header.clone();
    for c in &out.cells {
        s.push_str(c);
    }
    s.push_str(&out.footer);
    s
}

/// A tiny Mini source for custom-source requests; `k` varies the loop
/// bound so distinct `k` means distinct cache keys.
fn tiny_source(k: u64) -> String {
    format!(
        "fn main() {{\n    let i: int = 0;\n    let s: int = 0;\n    \
         while i < {k} {{\n        s = s + i;\n        i = i + 1;\n    }}\n    \
         print(s);\n}}\n"
    )
}

#[test]
fn served_quick_artifact_is_byte_identical_to_one_shot_sweep() {
    let engine = Engine::new(0, 64 << 20);
    let req = SweepRequest::default();

    let cold_started = Instant::now();
    let cold = engine.sweep(&req).expect("cold quick sweep");
    let cold_elapsed = cold_started.elapsed();
    assert!(cold.cold, "first request must compute");
    assert!(cold.misses > 0);

    let reference = run_sweep(&SweepConfig::quick())
        .expect("one-shot sweep")
        .to_json();
    assert_eq!(
        concat(&cold),
        reference,
        "served artifact must be byte-identical to ucmc sweep's"
    );

    // The warm repeat touches no compiler, VM, or simulator.
    let warm_started = Instant::now();
    let warm = engine.sweep(&req).expect("warm quick sweep");
    let warm_elapsed = warm_started.elapsed();
    assert!(!warm.cold, "repeat must be served from cache");
    assert_eq!(warm.misses, 0);
    assert_eq!(concat(&warm), reference, "warm bytes must not drift");
    assert!(
        warm_elapsed * 5 <= cold_elapsed,
        "warm repeat must be at least 5x faster (cold {cold_elapsed:?}, warm {warm_elapsed:?})"
    );

    // The stack-distance escape hatch changes the engine, never the
    // bytes — and is deliberately NOT part of any cache key, so the
    // request is warm.
    let no_stack = engine
        .sweep(&SweepRequest {
            stack_distance: false,
            ..SweepRequest::default()
        })
        .expect("no-stack sweep");
    assert!(!no_stack.cold, "engine choice must not be in the key");
    assert_eq!(concat(&no_stack), reference);
}

#[test]
fn served_timed_artifact_matches_one_shot_timed_sweep() {
    let engine = Engine::new(0, 64 << 20);
    let req = SweepRequest {
        timing: true,
        ..SweepRequest::default()
    };
    let served = engine.sweep(&req).expect("timed quick sweep");
    let mut cfg = SweepConfig::quick();
    cfg.timing = Some(TimingConfig::default());
    let reference = run_sweep(&cfg).expect("one-shot timed sweep").to_json();
    assert_eq!(concat(&served), reference);

    // Timed and untimed results live under different cell keys: the
    // untimed request still computes its cells.
    let untimed = engine.sweep(&SweepRequest::default()).expect("untimed");
    assert!(untimed.cold, "timing config must be part of the cell key");
}

#[test]
fn custom_source_requests_match_the_equivalent_one_shot_sweep() {
    let engine = Engine::new(0, 64 << 20);
    let text = tiny_source(37);
    let req = SweepRequest {
        source: Some(SourceSpec {
            name: "tiny".into(),
            text: text.clone(),
        }),
        geometries: Some(vec![Geometry {
            size_words: 64,
            line_words: 1,
            ways: 1,
        }]),
        ..SweepRequest::default()
    };
    let served = engine.sweep(&req).expect("custom sweep");

    // Reproduce the engine's configuration with the expected outputs
    // computed the honest way (0 + 1 + ... + 36).
    let mut cfg = SweepConfig::quick();
    cfg.suite = "custom".to_string();
    cfg.workloads = vec![Workload {
        name: "tiny".into(),
        source: text,
        expected: vec![(0..37).sum()],
    }];
    cfg.geometries = vec![Geometry {
        size_words: 64,
        line_words: 1,
        ways: 1,
    }];
    let reference = run_sweep(&cfg).expect("one-shot custom sweep").to_json();
    assert_eq!(concat(&served), reference);
}

#[test]
fn formatting_only_changes_are_warm_but_result_knobs_miss() {
    let engine = Engine::new(0, 64 << 20);
    let base = SweepRequest {
        source: Some(SourceSpec {
            name: "hyg".into(),
            text: tiny_source(23),
        }),
        ..SweepRequest::default()
    };
    assert!(engine.sweep(&base).expect("cold").cold);

    // Whitespace and comments never reach a key: same entries, warm.
    let reformatted = SweepRequest {
        source: Some(SourceSpec {
            name: "hyg".into(),
            text: "// a comment\nfn main()    { let i: int = 0;\n let s: int = 0;\n \
                 while i < 23 { s = s + i; i = i + 1; } /* block */ print(s); }"
                .to_string(),
        }),
        ..base.clone()
    };
    let warm = engine.sweep(&reformatted).expect("reformatted");
    assert!(
        !warm.cold,
        "formatting-only differences must hit the same cache entries"
    );

    // Every result-affecting knob misses.
    let knobs: Vec<(&str, SweepRequest)> = vec![
        (
            "token change",
            SweepRequest {
                source: Some(SourceSpec {
                    name: "hyg".into(),
                    text: tiny_source(24),
                }),
                ..base.clone()
            },
        ),
        (
            "seed",
            SweepRequest {
                seed: Some(99),
                ..base.clone()
            },
        ),
        (
            "timing",
            SweepRequest {
                timing: true,
                ..base.clone()
            },
        ),
        (
            "geometries",
            SweepRequest {
                geometries: Some(vec![Geometry {
                    size_words: 128,
                    line_words: 1,
                    ways: 1,
                }]),
                ..base.clone()
            },
        ),
    ];
    for (what, req) in knobs {
        let out = engine.sweep(&req).expect(what);
        assert!(out.cold, "{what} must change a cache key");
    }
}

#[test]
fn key_functions_frame_every_result_affecting_field() {
    let canon = canonical_source(&tiny_source(5)).unwrap();
    let base_opts = CompilerOptions::default();
    let k0 = program_key(&canon, &base_opts);

    // Formatting-insensitive on the source side.
    let same = canonical_source(
        "fn main() { let i: int = 0; let s: int = 0; while i < 5 { s = s + i; i = i + 1; } print(s); } // x",
    )
    .unwrap();
    assert_eq!(k0, program_key(&same, &base_opts));

    // Every compiler option lands in the program key.
    let variants = [
        CompilerOptions {
            num_regs: base_opts.num_regs + 1,
            ..base_opts
        },
        CompilerOptions {
            strategy: ucm_regalloc::Strategy::UsageCount,
            ..base_opts
        },
        CompilerOptions {
            mode: ManagementMode::Conventional,
            ..base_opts
        },
        CompilerOptions {
            globals_base: base_opts.globals_base + 8,
            ..base_opts
        },
        CompilerOptions {
            loop_promotion: !base_opts.loop_promotion,
            ..base_opts
        },
        CompilerOptions {
            local_promotion: !base_opts.local_promotion,
            ..base_opts
        },
        CompilerOptions {
            promote_scalars: !base_opts.promote_scalars,
            ..base_opts
        },
        CompilerOptions {
            guided_bypass: Some(ucm_core::GuidedBypassConfig::default()),
            ..base_opts
        },
    ];
    for (i, v) in variants.iter().enumerate() {
        assert_ne!(k0, program_key(&canon, v), "option variant {i}");
    }

    // The guided config's own fields are framed too — two guided
    // builds for different caches are different programs.
    let g0 = ucm_core::GuidedBypassConfig::default();
    let small = ucm_core::GuidedBypassConfig {
        cache: ucm_cache::CacheConfig {
            size_words: 1,
            line_words: 1,
            associativity: 1,
            ..ucm_cache::CacheConfig::default()
        },
        ..g0
    };
    assert_ne!(
        program_key(
            &canon,
            &CompilerOptions {
                guided_bypass: Some(g0),
                ..base_opts
            }
        ),
        program_key(
            &canon,
            &CompilerOptions {
                guided_bypass: Some(small),
                ..base_opts
            }
        ),
    );

    // Trace keys see the workload identity, the mode list, and the VM.
    let cfg = SweepConfig::quick();
    let w = Workload {
        name: "a".into(),
        source: tiny_source(5),
        expected: vec![10],
    };
    let cg = cfg.codegens[0];
    let t0 = trace_group_key(&canon, &w, cg, &cfg);
    let renamed = Workload {
        name: "b".into(),
        ..w.clone()
    };
    assert_ne!(t0, trace_group_key(&canon, &renamed, cg, &cfg));
    let other_expected = Workload {
        expected: vec![11],
        ..w.clone()
    };
    assert_ne!(t0, trace_group_key(&canon, &other_expected, cg, &cfg));
    let mut bigger_vm = cfg.clone();
    bigger_vm.vm.max_steps += 1;
    assert_ne!(t0, trace_group_key(&canon, &w, cg, &bigger_vm));
    let mut fewer_modes = cfg.clone();
    fewer_modes.modes.truncate(1);
    assert_ne!(t0, trace_group_key(&canon, &w, cg, &fewer_modes));

    // Cell keys see the full cell configuration — honor flags included —
    // and the timing model.
    let geom = cfg.geometries[0];
    let cell = cfg.cell_cache(
        ManagementMode::Unified,
        geom,
        cfg.write_policies[0],
        cfg.policies[0],
    );
    let c0 = cell_key(t0, 0, cell, None);
    assert_ne!(c0, cell_key(t0, 1, cell, None), "mode index");
    // The conventional twin differs exactly in its honor flags.
    let conv = cfg.cell_cache(
        ManagementMode::Conventional,
        geom,
        cfg.write_policies[0],
        cfg.policies[0],
    );
    assert_ne!(c0, cell_key(t0, 0, conv, None), "honor flags");
    let mut reseeded = cell;
    reseeded.seed += 1;
    assert_ne!(c0, cell_key(t0, 0, reseeded, None), "cell seed");
    assert_ne!(
        c0,
        cell_key(t0, 0, cell, Some(TimingConfig::default())),
        "timing presence"
    );
    let slow = TimingConfig {
        mem_word_cycles: TimingConfig::default().mem_word_cycles + 1,
        ..TimingConfig::default()
    };
    assert_ne!(
        cell_key(t0, 0, cell, Some(TimingConfig::default())),
        cell_key(t0, 0, cell, Some(slow)),
        "timing fields"
    );
}

#[test]
fn evicted_entries_recompute_byte_identical() {
    // A budget small enough that cycling several workloads evicts, but
    // large enough that each one's trace group is admitted.
    let engine = Engine::new(0, 24_000);
    let req_for = |k: u64| SweepRequest {
        source: Some(SourceSpec {
            name: format!("evict-{k}"),
            text: tiny_source(k),
        }),
        geometries: Some(vec![Geometry {
            size_words: 64,
            line_words: 1,
            ways: 1,
        }]),
        ..SweepRequest::default()
    };
    let first = engine.sweep(&req_for(10)).expect("first");
    let first_bytes = concat(&first);
    for k in 11..17 {
        engine.sweep(&req_for(k)).expect("filler");
    }
    let stats = engine.cache_stats();
    assert!(
        stats.total().evictions > 0,
        "cycling workloads past the budget must evict: {stats:?}"
    );
    let again = engine.sweep(&req_for(10)).expect("re-request");
    assert_eq!(
        concat(&again),
        first_bytes,
        "recomputed-after-eviction results must be byte-identical"
    );
    // Conservation across every store: each lookup is a hit or a miss.
    let t = engine.cache_stats().total();
    assert!(t.hits > 0 && t.misses > 0);
}

#[test]
fn socket_roundtrip_parity_warmth_and_hostile_lines() {
    let path = PathBuf::from(format!("/tmp/ucm-serve-test-{}.sock", std::process::id()));
    let mut cfg = ServeConfig::new(&path);
    cfg.max_request_bytes = 64 << 10;
    let server = Server::bind(cfg).expect("bind");
    let handle = std::thread::spawn(move || server.run());

    let mut client = Client::connect(&path).expect("connect");
    client.ping().expect("ping");

    // Cold and warm through the whole protocol stack, byte-compared
    // against the one-shot sweep.
    let reference = run_sweep(&SweepConfig::quick())
        .expect("one-shot")
        .to_json();
    let cold = client.sweep(&SweepRequest::default()).expect("cold");
    assert!(cold.cold);
    assert_eq!(cold.artifact, reference);
    let warm = client.sweep(&SweepRequest::default()).expect("warm");
    assert!(!warm.cold);
    assert_eq!(warm.misses, 0);
    assert_eq!(warm.artifact, reference);

    let stats = client.stats().expect("stats");
    assert!(stats.requests >= 4, "ping + 2 sweeps + stats");
    assert!(stats.traces.hits > 0, "warm sweep must hit the trace store");

    // Hostile lines on a raw connection: typed errors, and the
    // connection keeps serving.
    let raw = UnixStream::connect(&path).expect("raw connect");
    let mut reader = BufReader::new(raw.try_clone().expect("clone"));
    let mut w = raw;
    let mut expect_error = |line: &[u8], kind: &str| {
        w.write_all(line).expect("write");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read");
        let doc = json::parse(reply.trim_end()).expect("error reply must be JSON");
        assert_eq!(
            doc.get("ok").and_then(Json::as_bool),
            Some(false),
            "{reply}"
        );
        assert_eq!(
            doc.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some(kind),
            "{reply}"
        );
    };
    expect_error(b"this is not json\n", "json");
    expect_error(b"{\"op\":\"frobnicate\"}\n", "unknown-op");
    expect_error(b"{\"op\":\"sweep\",\"seeed\":1}\n", "schema");
    expect_error(
        b"{\"op\":\"sweep\",\"suite\":\"full\",\"seed\":1.5}\n",
        "schema",
    );
    // An un-parseable source is a typed sweep error, not a dead server.
    expect_error(
        b"{\"op\":\"sweep\",\"source\":{\"name\":\"bad\",\"text\":\"fn main( {\"}}\n",
        "source",
    );
    // A bad geometry is rejected by validation, same as ucmc sweep.
    expect_error(
        b"{\"op\":\"sweep\",\"geometries\":[{\"size_words\":3,\"line_words\":2,\"ways\":1}]}\n",
        "sweep",
    );
    // An oversized line is rejected and the stream resynchronises.
    let mut big = vec![b'x'; 80 << 10];
    big.push(b'\n');
    expect_error(&big, "too-large");
    // The same raw connection still serves valid requests.
    w.write_all(b"{\"op\":\"ping\"}\n").expect("write ping");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read pong");
    assert!(reply.contains("\"pong\""), "{reply}");
    drop(w);

    client.shutdown().expect("shutdown");
    handle.join().expect("join").expect("serve loop");
    assert!(!path.exists(), "socket file must be cleaned up");
}

#[test]
fn cache_dir_survives_a_restart_with_byte_identical_artifacts() {
    let dir = PathBuf::from(format!("/tmp/ucm-serve-cachedir-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let sock = |n: u32| PathBuf::from(format!("/tmp/ucm-serve-cd-{}-{n}.sock", std::process::id()));
    let serve_once = |n: u32| -> (PathBuf, std::thread::JoinHandle<std::io::Result<()>>) {
        let path = sock(n);
        let mut cfg = ServeConfig::new(&path);
        cfg.cache_dir = Some(dir.clone());
        let server = Server::bind(cfg).expect("bind");
        (path, std::thread::spawn(move || server.run()))
    };

    // Cold server: compute the quick grid, which write-through persists
    // every cell.
    let (path, handle) = serve_once(0);
    let mut client = Client::connect(&path).expect("connect");
    let cold = client.sweep(&SweepRequest::default()).expect("cold");
    assert!(cold.cold);
    let stats = client.stats().expect("stats");
    let disk = stats
        .disk
        .expect("--cache-dir server must report disk stats");
    assert_eq!(disk.loaded, 0, "first start finds an empty directory");
    assert_eq!(disk.write_errors, 0);
    client.shutdown().expect("shutdown");
    handle.join().expect("join").expect("serve loop");

    // Restarted server, same directory: the cells load on start, so the
    // first sweep re-records traces but replays nothing — every cell
    // hits — and the bytes match exactly.
    let (path, handle) = serve_once(1);
    let mut client = Client::connect(&path).expect("reconnect");
    let stats = client.stats().expect("stats");
    let disk = stats.disk.expect("disk stats");
    assert!(disk.loaded > 0, "restart must load the persisted cells");
    assert_eq!(disk.corrupt, 0);
    let warm = client.sweep(&SweepRequest::default()).expect("warm");
    assert_eq!(
        warm.artifact, cold.artifact,
        "restart must not change bytes"
    );
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.cells.misses, 0,
        "a warm restart's first sweep must serve every cell from the loaded store"
    );
    client.shutdown().expect("shutdown");
    handle.join().expect("join").expect("serve loop");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn loadgen_self_host_produces_a_valid_report_with_warm_speedup() {
    let report = run_loadgen(&LoadgenConfig {
        seed: 42,
        requests: 8,
        socket: None,
        jobs: 2,
        cache_bytes: 128 << 20,
    })
    .expect("loadgen");
    assert_eq!(report.requests, 8);
    assert_eq!(report.cold_requests + report.warm_requests, 8);
    assert!(
        report.warm_requests > 0,
        "the mix must repeat the quick grid"
    );
    let speedup = report
        .warm_speedup
        .expect("quick repeats must yield a speedup figure");
    assert!(
        speedup >= 5.0,
        "warm quick grid must be at least 5x faster than cold (got {speedup:.1}x)"
    );
    let text = report.to_json();
    validate_serve_json(&text).expect("BENCH_serve.json must validate");

    // Determinism of the mix: same seed, same request classes.
    let again = run_loadgen(&LoadgenConfig {
        seed: 42,
        requests: 8,
        socket: None,
        jobs: 2,
        cache_bytes: 128 << 20,
    })
    .expect("loadgen again");
    assert_eq!(report.cold_requests, again.cold_requests);
    assert_eq!(report.warm_requests, again.warm_requests);
}
