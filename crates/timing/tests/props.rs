//! Property tests of the timing engine's core contracts, over random
//! transaction streams:
//!
//! * the memory bus is exclusive — logged transfers never overlap in time;
//! * same-address ordering — when two transfers touch a common word, the
//!   earlier reference's transfer finishes before the later one starts
//!   (the write buffer never reorders conflicting traffic);
//! * the write buffer fully drains at run end, and every written word
//!   reaches memory exactly once;
//! * the degenerate configuration collapses to the closed-form serial
//!   access time for *any* stream;
//! * the report is deterministic and self-consistent.

use proptest::prelude::*;
use ucm_timing::{Eviction, MemXact, TimingConfig, TimingSim};

/// One generated reference: an address plus its classified transaction.
#[derive(Debug, Clone, Copy)]
struct Ref {
    addr: i64,
    xact: MemXact,
}

/// Strategy for one transaction. Addresses live in a small window so
/// conflicts actually happen; the eviction tuple's `0` word count means
/// "no write-back".
fn any_ref() -> impl Strategy<Value = Ref> {
    (0i64..64, 1u64..5, 0u8..6, (0i64..64, 0u64..5)).prop_map(
        |(addr, words, kind, (ev_lo, ev_words))| {
            let xact = match kind {
                0 => MemXact::Hit { is_write: false },
                1 => MemXact::Hit { is_write: true },
                2 => MemXact::Miss {
                    is_write: false,
                    fill_words: words,
                    writeback: (ev_words > 0).then_some(Eviction {
                        lo: ev_lo,
                        words: ev_words,
                    }),
                },
                3 => MemXact::BypassRead { words },
                4 => MemXact::BypassWrite { words },
                _ => MemXact::ThroughWrite { hit: false, words },
            };
            // Align miss addresses to their fill size, mirroring how the
            // cache derives line addresses.
            let addr = match xact {
                MemXact::Miss { fill_words, .. } if fill_words > 0 => {
                    addr - addr.rem_euclid(fill_words as i64)
                }
                _ => addr,
            };
            Ref { addr, xact }
        },
    )
}

fn any_config() -> impl Strategy<Value = TimingConfig> {
    (1u64..4, 1u64..13, 0usize..5, 0u64..3).prop_map(|(hit, mem, wb, issue)| TimingConfig {
        hit_cycles: hit,
        mem_word_cycles: mem,
        write_buffer_entries: wb,
        issue_cycles: issue,
    })
}

/// Words a transaction writes toward memory (buffered or synchronous).
fn written_words(x: &MemXact) -> u64 {
    match x {
        MemXact::Miss { writeback, .. } => writeback.map_or(0, |e| e.words),
        MemXact::BypassWrite { words } => *words,
        MemXact::ThroughWrite { words, .. } => *words,
        _ => 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn bus_is_exclusive_and_conflicts_stay_ordered(
        cfg in any_config(),
        refs in prop::collection::vec(any_ref(), 0..120),
    ) {
        let mut sim = TimingSim::with_bus_log(cfg);
        for r in &refs {
            sim.xact(r.addr, r.xact);
        }
        sim.finish(refs.len() as u64);
        let log = sim.bus_log();
        // Exclusivity: the log is in commit order and transfers may not
        // overlap in time.
        for w in log.windows(2) {
            prop_assert!(
                w[1].start >= w[0].done,
                "bus transfers overlap: {:?} then {:?}", w[0], w[1]
            );
        }
        // Same-address ordering: for any two transfers sharing a word,
        // the one caused by the earlier reference transfers first.
        for (i, a) in log.iter().enumerate() {
            for b in &log[i + 1..] {
                if a.seq == b.seq {
                    continue; // one miss may emit fill + write-back
                }
                let overlap = a.lo < b.lo + b.words as i64 && b.lo < a.lo + a.words as i64;
                if overlap {
                    let (first, second) = if a.seq < b.seq { (a, b) } else { (b, a) };
                    prop_assert!(
                        second.start >= first.done,
                        "reference {} reordered past reference {}: {:?} vs {:?}",
                        second.seq, first.seq, first, second
                    );
                }
            }
        }
    }

    #[test]
    fn write_buffer_fully_drains_and_conserves_words(
        cfg in any_config(),
        refs in prop::collection::vec(any_ref(), 0..120),
    ) {
        let mut sim = TimingSim::new(cfg);
        let mut written = 0u64;
        for r in &refs {
            written += written_words(&r.xact);
            sim.xact(r.addr, r.xact);
        }
        let report = sim.finish(refs.len() as u64 * 3);
        prop_assert_eq!(report.pending_writes, 0, "finish must drain the buffer");
        prop_assert_eq!(report.drained_words, written, "every written word reaches memory once");
        prop_assert!(report.wb_peak <= cfg.write_buffer_entries);
    }

    #[test]
    fn degenerate_config_is_the_serial_closed_form(
        hit in 0u64..4,
        mem in 1u64..13,
        refs in prop::collection::vec(any_ref(), 0..120),
    ) {
        let cfg = TimingConfig::degenerate(hit, mem);
        let mut sim = TimingSim::new(cfg);
        let mut cache_refs = 0u64;
        let mut bus_words = 0u64;
        for r in &refs {
            if r.xact.is_cache_ref() {
                cache_refs += 1;
            }
            bus_words += r.xact.bus_words();
            sim.xact(r.addr, r.xact);
        }
        let report = sim.finish(0);
        prop_assert_eq!(
            report.total_cycles,
            cfg.serial_access_time(cache_refs, bus_words)
        );
    }

    #[test]
    fn reports_are_deterministic_and_self_consistent(
        cfg in any_config(),
        refs in prop::collection::vec(any_ref(), 0..120),
        steps_slack in 0u64..100,
    ) {
        let run = || {
            let mut sim = TimingSim::new(cfg);
            for r in &refs {
                sim.xact(r.addr, r.xact);
            }
            sim.finish(refs.len() as u64 + steps_slack)
        };
        let a = run();
        prop_assert_eq!(a, run(), "same stream must report identically");
        let compute = a.base_cycles + a.mem_stall_cycles();
        prop_assert!(a.total_cycles >= compute);
        prop_assert!(
            a.total_cycles <= compute + a.bus_busy_cycles,
            "only trailing drains extend past compute"
        );
        prop_assert!(a.bus_busy_cycles <= a.total_cycles);
    }
}
