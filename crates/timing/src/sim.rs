//! The event-driven timing engine.
//!
//! One [`TimingSim`] models an in-order, single-issue core in front of a
//! cache, a finite write buffer, and a single shared memory bus:
//!
//! * Every data reference costs [`issue_cycles`] of base pipeline time.
//!   Cache activity (hits and the lookup half of misses) adds
//!   [`hit_cycles`].
//! * **Reads block.** A fill or bypass read occupies the bus for
//!   `words × mem_word_cycles` and the core waits for the data.
//! * **Writes are buffered.** Write-backs, bypass stores, and
//!   write-through words enter a FIFO write buffer and drain over the bus
//!   in the background, overlapping compute. An entry occupies its slot
//!   until its drain completes; the core stalls on a write only when the
//!   buffer is full (it waits for the head entry to finish draining).
//! * **The bus is a single resource.** Transfers never overlap: the head
//!   buffered write starts draining the moment the bus goes idle; a read
//!   that arrives mid-transfer waits the transfer out, but may start
//!   ahead of buffered writes that have *not* begun draining — unless one
//!   of them overlaps the read's addresses, in which case the buffer is
//!   drained through the conflicting entry first (same-address ordering:
//!   memory always sees program order per address).
//!
//! The model is pure integer arithmetic over the transaction stream; the
//! same stream and configuration produce bit-identical reports.
//!
//! [`issue_cycles`]: crate::TimingConfig::issue_cycles
//! [`hit_cycles`]: crate::TimingConfig::hit_cycles

use crate::config::TimingConfig;
use crate::xact::MemXact;
use std::collections::VecDeque;

/// A write sitting in the write buffer. The drain schedule is committed
/// lazily: `done` stays `None` until the bus actually picks the entry up,
/// so later reads to other addresses can overtake it.
#[derive(Debug, Clone, Copy)]
struct WbEntry {
    /// First word address the entry writes.
    lo: i64,
    /// Words it writes.
    words: u64,
    /// Core cycle at which it entered the buffer.
    enqueued_at: u64,
    /// Transaction sequence number of the enqueuing reference.
    seq: u64,
    /// Committed drain completion cycle, once the bus picked the entry up.
    done: Option<u64>,
}

/// What a logged bus transfer moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferKind {
    /// A cache-line fill (read miss).
    Fill,
    /// A bypass load served straight from memory.
    BypassRead,
    /// A write-buffer drain (write-back, bypass store, or write-through
    /// word).
    Drain,
}

/// One bus transfer, recorded when the simulator is built with
/// [`TimingSim::with_bus_log`]. Tests use the log to check bus
/// exclusivity and same-address ordering.
#[derive(Debug, Clone, Copy)]
pub struct BusTransfer {
    /// Transaction sequence number of the reference that caused the
    /// transfer (for drains: the reference that *enqueued* the write).
    pub seq: u64,
    /// First word address moved.
    pub lo: i64,
    /// Words moved.
    pub words: u64,
    /// Cycle the transfer started.
    pub start: u64,
    /// Cycle the transfer completed.
    pub done: u64,
    /// Transfer class.
    pub kind: TransferKind,
}

/// The cycle accounting of one finished run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingReport {
    /// Total cycles: compute completion or the last write-buffer drain,
    /// whichever is later.
    pub total_cycles: u64,
    /// VM steps the run executed (the CPI denominator).
    pub steps: u64,
    /// Data references timed.
    pub refs: u64,
    /// Base pipeline cycles: one issue per reference plus one cycle per
    /// non-memory instruction.
    pub base_cycles: u64,
    /// Cycles spent in cache lookups (hits, and misses before the bus).
    pub hit_stall_cycles: u64,
    /// Cycles the core waited on fills and bypass reads (bus wait plus
    /// transfer).
    pub read_stall_cycles: u64,
    /// Cycles the core waited on a full write buffer.
    pub write_stall_cycles: u64,
    /// Cycles the core waited draining buffered writes that conflicted
    /// with a read address (same-address ordering).
    pub hazard_stall_cycles: u64,
    /// Cycles the memory bus was occupied (fills + bypasses + drains).
    pub bus_busy_cycles: u64,
    /// Words drained from the write buffer to memory.
    pub drained_words: u64,
    /// Highest write-buffer occupancy observed, in entries.
    pub wb_peak: usize,
    /// Entries still buffered after the final drain — always `0`; reported
    /// so tests can pin the buffer-fully-drains contract.
    pub pending_writes: usize,
}

impl TimingReport {
    /// Cycles per instruction (`0` when the run executed no steps).
    pub fn cpi(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.steps as f64
        }
    }

    /// Fraction of total cycles the memory bus was busy.
    pub fn bus_utilisation(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.bus_busy_cycles as f64 / self.total_cycles as f64
        }
    }

    /// All cycles the core lost to the memory system.
    pub fn mem_stall_cycles(&self) -> u64 {
        self.hit_stall_cycles
            + self.read_stall_cycles
            + self.write_stall_cycles
            + self.hazard_stall_cycles
    }
}

/// The event-driven memory-timing simulator. Feed it one [`MemXact`] per
/// data reference via [`xact`](TimingSim::xact), then call
/// [`finish`](TimingSim::finish) with the run's VM step count.
#[derive(Debug, Clone)]
pub struct TimingSim {
    cfg: TimingConfig,
    /// Current core cycle.
    now: u64,
    /// Cycle at which the bus finishes its last committed transfer.
    bus_free: u64,
    wb: VecDeque<WbEntry>,
    refs: u64,
    issue_cycles_total: u64,
    hit_stall: u64,
    read_stall: u64,
    write_stall: u64,
    hazard_stall: u64,
    bus_busy: u64,
    drained_words: u64,
    wb_peak: usize,
    log: Option<Vec<BusTransfer>>,
}

/// Whether `[lo1, lo1+w1)` and `[lo2, lo2+w2)` share a word.
fn overlaps(lo1: i64, w1: u64, lo2: i64, w2: u64) -> bool {
    lo1 < lo2 + w2 as i64 && lo2 < lo1 + w1 as i64
}

impl TimingSim {
    /// A simulator for `cfg`.
    pub fn new(cfg: TimingConfig) -> Self {
        TimingSim {
            cfg,
            now: 0,
            bus_free: 0,
            wb: VecDeque::new(),
            refs: 0,
            issue_cycles_total: 0,
            hit_stall: 0,
            read_stall: 0,
            write_stall: 0,
            hazard_stall: 0,
            bus_busy: 0,
            drained_words: 0,
            wb_peak: 0,
            log: None,
        }
    }

    /// Like [`new`](TimingSim::new), but records every bus transfer for
    /// inspection via [`bus_log`](TimingSim::bus_log). Test-only in
    /// spirit: the log grows by one entry per transfer.
    pub fn with_bus_log(cfg: TimingConfig) -> Self {
        let mut sim = TimingSim::new(cfg);
        sim.log = Some(Vec::new());
        sim
    }

    /// The configuration in use.
    pub fn config(&self) -> &TimingConfig {
        &self.cfg
    }

    /// The current core cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Buffered writes whose drain has not completed by the current core
    /// cycle.
    pub fn pending_writes(&self) -> usize {
        self.wb
            .iter()
            .filter(|e| e.done.is_none_or(|d| d > self.now))
            .count()
    }

    /// The recorded bus transfers (empty unless built with
    /// [`with_bus_log`](TimingSim::with_bus_log)).
    pub fn bus_log(&self) -> &[BusTransfer] {
        self.log.as_deref().unwrap_or(&[])
    }

    fn record(&mut self, seq: u64, lo: i64, words: u64, start: u64, done: u64, kind: TransferKind) {
        if let Some(log) = &mut self.log {
            log.push(BusTransfer {
                seq,
                lo,
                words,
                start,
                done,
                kind,
            });
        }
    }

    /// Commits the drain schedule of the head entry, starting no earlier
    /// than `floor`. Returns its completion cycle.
    fn commit_head_drain(&mut self, floor: u64) -> u64 {
        let e = self.wb[0];
        debug_assert!(e.done.is_none());
        let start = self.bus_free.max(floor).max(e.enqueued_at);
        let done = start + e.words * self.cfg.mem_word_cycles;
        self.wb[0].done = Some(done);
        self.bus_free = done;
        self.bus_busy += done - start;
        self.record(e.seq, e.lo, e.words, start, done, TransferKind::Drain);
        done
    }

    fn pop_drained(&mut self) {
        let e = self.wb.pop_front().expect("pop_drained needs an entry");
        debug_assert!(e.done.is_some());
        self.drained_words += e.words;
    }

    /// Background draining up to core cycle `t`: the head entry starts
    /// draining whenever the bus goes idle (the bus works while the core
    /// computes), and entries leave the buffer when their drain completes.
    /// Afterwards at most the head can still be in flight, its completion
    /// captured in `bus_free`.
    fn drain_until(&mut self, t: u64) {
        while let Some(front) = self.wb.front() {
            match front.done {
                Some(done) if done <= t => self.pop_drained(),
                Some(_) => break, // in flight past t
                None => {
                    let start = self.bus_free.max(front.enqueued_at);
                    if start >= t {
                        break; // would not have started yet
                    }
                    self.commit_head_drain(0);
                }
            }
        }
    }

    /// Same-address ordering: if any buffered write overlaps
    /// `[lo, lo+words)`, drain the buffer through the *last* such entry
    /// before the read may touch memory. The wait is accounted as hazard
    /// stall.
    fn drain_conflicts(&mut self, lo: i64, words: u64) {
        let conflict = self
            .wb
            .iter()
            .rposition(|e| overlaps(e.lo, e.words, lo, words));
        if let Some(idx) = conflict {
            let t = self.now;
            for _ in 0..=idx {
                if self.wb[0].done.is_none() {
                    self.commit_head_drain(t);
                }
                self.pop_drained();
            }
            if self.bus_free > t {
                self.hazard_stall += self.bus_free - t;
                self.now = self.bus_free;
            }
        }
    }

    /// A blocking read of `words` from `lo`: waits out any in-flight or
    /// conflicting drain, takes the bus, and advances the core to data
    /// arrival. Buffered writes to other addresses that have not started
    /// draining are overtaken.
    fn read_bus(&mut self, lo: i64, words: u64, kind: TransferKind) -> u64 {
        if words == 0 {
            return self.now;
        }
        self.drain_until(self.now);
        self.drain_conflicts(lo, words);
        let start = self.now.max(self.bus_free);
        let done = start + words * self.cfg.mem_word_cycles;
        self.bus_free = done;
        self.bus_busy += done - start;
        self.record(self.refs, lo, words, start, done, kind);
        self.read_stall += done - self.now;
        self.now = done;
        done
    }

    /// A buffered write of `words` to `lo`. With a zero-entry buffer the
    /// write is synchronous; otherwise the core stalls only when the
    /// buffer is full. Returns the core cycle after the write retires
    /// (not its drain time — draining is background work).
    fn enqueue_write(&mut self, lo: i64, words: u64) -> u64 {
        if words == 0 {
            return self.now;
        }
        if self.cfg.write_buffer_entries == 0 {
            // Synchronous: the core escorts the words to memory itself.
            let start = self.now.max(self.bus_free);
            let done = start + words * self.cfg.mem_word_cycles;
            self.bus_free = done;
            self.bus_busy += done - start;
            self.drained_words += words;
            self.record(self.refs, lo, words, start, done, TransferKind::Drain);
            self.write_stall += done - self.now;
            self.now = done;
            return self.now;
        }
        self.drain_until(self.now);
        if self.wb.len() == self.cfg.write_buffer_entries {
            // Full: wait for the head to finish draining.
            let done = match self.wb[0].done {
                Some(done) => done,
                None => self.commit_head_drain(self.now),
            };
            self.pop_drained();
            if done > self.now {
                self.write_stall += done - self.now;
                self.now = done;
            }
        }
        self.wb.push_back(WbEntry {
            lo,
            words,
            enqueued_at: self.now,
            seq: self.refs,
            done: None,
        });
        self.wb_peak = self.wb_peak.max(self.wb.len());
        self.now
    }

    fn charge_hit(&mut self) {
        self.hit_stall += self.cfg.hit_cycles;
        self.now += self.cfg.hit_cycles;
    }

    /// Presents one classified reference to `addr`. Returns the core cycle
    /// at which the reference retires (for blocking reads: when the data
    /// arrived).
    pub fn xact(&mut self, addr: i64, x: MemXact) -> u64 {
        self.refs += 1;
        self.now += self.cfg.issue_cycles;
        self.issue_cycles_total += self.cfg.issue_cycles;
        match x {
            MemXact::Hit { .. } => {
                self.charge_hit();
                self.now
            }
            MemXact::Miss {
                fill_words,
                writeback,
                ..
            } => {
                self.charge_hit();
                if fill_words > 0 {
                    // Fills fetch the whole aligned line containing `addr`.
                    let lo = addr - addr.rem_euclid(fill_words as i64);
                    self.read_bus(lo, fill_words, TransferKind::Fill);
                }
                if let Some(e) = writeback {
                    self.enqueue_write(e.lo, e.words);
                }
                self.now
            }
            MemXact::BypassRead { words } => self.read_bus(addr, words, TransferKind::BypassRead),
            MemXact::BypassWrite { words } => self.enqueue_write(addr, words),
            MemXact::ThroughWrite { words, .. } => {
                self.charge_hit();
                self.enqueue_write(addr, words)
            }
        }
    }

    /// Ends the run: accounts the `steps - refs` non-memory instructions
    /// (they overlap any remaining drains), drains the write buffer to
    /// empty, and returns the report. `steps` is the VM's executed
    /// instruction count — the CPI denominator.
    pub fn finish(&mut self, steps: u64) -> TimingReport {
        let tail = steps.saturating_sub(self.refs) * self.cfg.issue_cycles;
        let compute_done = self.now + tail;
        while !self.wb.is_empty() {
            if self.wb[0].done.is_none() {
                self.commit_head_drain(0);
            }
            self.pop_drained();
        }
        let report = TimingReport {
            total_cycles: compute_done.max(self.bus_free),
            steps,
            refs: self.refs,
            base_cycles: self.issue_cycles_total + tail,
            hit_stall_cycles: self.hit_stall,
            read_stall_cycles: self.read_stall,
            write_stall_cycles: self.write_stall,
            hazard_stall_cycles: self.hazard_stall,
            bus_busy_cycles: self.bus_busy,
            drained_words: self.drained_words,
            wb_peak: self.wb_peak,
            pending_writes: self.wb.len(),
        };
        // One summary emission per simulated run (never per event); a
        // disabled collector costs a single atomic load here.
        if ucm_obs::enabled() {
            ucm_obs::counter("timing.total_cycles", report.total_cycles);
            ucm_obs::counter("timing.bus_busy_cycles", report.bus_busy_cycles);
            ucm_obs::counter("timing.read_stall_cycles", report.read_stall_cycles);
            ucm_obs::counter("timing.write_stall_cycles", report.write_stall_cycles);
            ucm_obs::counter("timing.hazard_stall_cycles", report.hazard_stall_cycles);
            ucm_obs::counter("timing.drained_words", report.drained_words);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xact::Eviction;

    fn cfg(wb: usize) -> TimingConfig {
        TimingConfig {
            hit_cycles: 1,
            mem_word_cycles: 10,
            write_buffer_entries: wb,
            issue_cycles: 1,
        }
    }

    #[test]
    fn hits_cost_issue_plus_hit() {
        let mut sim = TimingSim::new(cfg(4));
        sim.xact(0, MemXact::Hit { is_write: false });
        sim.xact(1, MemXact::Hit { is_write: true });
        let r = sim.finish(2);
        assert_eq!(r.total_cycles, 4);
        assert_eq!(r.base_cycles, 2);
        assert_eq!(r.hit_stall_cycles, 2);
        assert_eq!(r.bus_busy_cycles, 0);
        assert!((r.cpi() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn buffered_write_does_not_stall_the_core() {
        let mut sim = TimingSim::new(cfg(4));
        let retired = sim.xact(100, MemXact::BypassWrite { words: 1 });
        assert_eq!(retired, 1, "issue only; the store sits in the buffer");
        assert_eq!(sim.pending_writes(), 1);
        let r = sim.finish(1);
        assert_eq!(r.write_stall_cycles, 0);
        assert_eq!(r.pending_writes, 0, "finish drains the buffer");
        assert_eq!(r.drained_words, 1);
        // The drain (1→11) outlasts compute (1 issue cycle).
        assert_eq!(r.total_cycles, 11);
    }

    #[test]
    fn zero_entry_buffer_makes_writes_synchronous() {
        let mut sim = TimingSim::new(cfg(0));
        sim.xact(100, MemXact::BypassWrite { words: 1 });
        let r = sim.finish(1);
        assert_eq!(r.write_stall_cycles, 10);
        assert_eq!(r.total_cycles, 11);
        assert_eq!(r.drained_words, 1);
    }

    #[test]
    fn full_buffer_stalls_until_the_head_drains() {
        let mut sim = TimingSim::new(cfg(1));
        sim.xact(0, MemXact::BypassWrite { words: 1 }); // t=1, drains 1→11
                                                        // Second write at t=2: buffer full, head drain completes at 11.
        sim.xact(8, MemXact::BypassWrite { words: 1 });
        let r = sim.finish(2);
        assert_eq!(r.write_stall_cycles, 9, "waited 2→11 for the head");
        assert_eq!(r.wb_peak, 1);
        // Second drain occupies the bus 11→21.
        assert_eq!(r.total_cycles, 21);
        assert_eq!(r.bus_busy_cycles, 20);
    }

    #[test]
    fn read_overtakes_unrelated_buffered_writes() {
        let mut sim = TimingSim::new(cfg(4));
        sim.xact(0, MemXact::Hit { is_write: false }); // t=2
        sim.xact(1, MemXact::BypassWrite { words: 1 }); // enqueued t=3
        sim.xact(2, MemXact::BypassWrite { words: 1 }); // enqueued t=4
                                                        // At t=5 the first drain is in flight (3→13); the second has not
                                                        // started. A read of an unrelated address waits only the in-flight
                                                        // transfer, then overtakes the second drain.
        let done = sim.xact(500, MemXact::BypassRead { words: 1 });
        assert_eq!(done, 23, "13 (in-flight drain) + 10 (the read)");
        assert_eq!(sim.pending_writes(), 1, "the overtaken write still pends");
    }

    #[test]
    fn read_waits_for_conflicting_buffered_write() {
        let mut sim = TimingSim::new(cfg(4));
        sim.xact(0, MemXact::Hit { is_write: false }); // t=2
        sim.xact(1, MemXact::BypassWrite { words: 1 }); // drain 3→13
        sim.xact(700, MemXact::BypassWrite { words: 1 }); // not started
                                                          // Read of 700 at t=5: in-flight drain of 1 ends at 13, then the
                                                          // conflicting write to 700 drains 13→23, then the read runs 23→33.
        let done = sim.xact(700, MemXact::BypassRead { words: 1 });
        assert_eq!(done, 33);
        let r = sim.finish(4);
        assert_eq!(r.hazard_stall_cycles, 18, "waited 5→23 on the hazard");
        assert_eq!(r.pending_writes, 0);
    }

    #[test]
    fn miss_fills_block_and_victims_are_buffered() {
        let mut sim = TimingSim::new(cfg(4));
        let done = sim.xact(
            5,
            MemXact::Miss {
                is_write: false,
                fill_words: 4,
                writeback: Some(Eviction { lo: 64, words: 4 }),
            },
        );
        // issue 1 + hit 1 = t=2; fill of line [4,8) runs 2→42.
        assert_eq!(done, 42);
        assert_eq!(sim.pending_writes(), 1, "victim write-back buffered");
        let r = sim.finish(1);
        // Victim drains 42→82 in the background.
        assert_eq!(r.total_cycles, 82);
        assert_eq!(r.read_stall_cycles, 40);
        assert_eq!(r.drained_words, 4);
    }

    #[test]
    fn fill_conflicting_with_buffered_victim_waits() {
        // Evict a dirty line, then miss on it again while the write-back
        // still pends: the refill must wait for the write-back to reach
        // memory (no stale read).
        let mut sim = TimingSim::with_bus_log(cfg(4));
        sim.xact(0, MemXact::Hit { is_write: false });
        sim.xact(
            64,
            MemXact::Miss {
                is_write: false,
                fill_words: 1,
                writeback: None,
            },
        );
        sim.xact(100, MemXact::BypassWrite { words: 1 }); // unrelated
        sim.xact(64, MemXact::BypassWrite { words: 1 }); // conflict source
        let before = sim.now();
        sim.xact(
            64,
            MemXact::Miss {
                is_write: false,
                fill_words: 1,
                writeback: None,
            },
        );
        let log = sim.bus_log();
        let drain = log
            .iter()
            .rfind(|t| t.kind == TransferKind::Drain && t.lo == 64)
            .expect("the conflicting write drained");
        let fill = log
            .iter()
            .rfind(|t| t.kind == TransferKind::Fill && t.lo == 64)
            .expect("the refill ran");
        assert!(
            fill.start >= drain.done,
            "refill at {} must follow the write-back ending at {}",
            fill.start,
            drain.done
        );
        assert!(fill.start >= before);
    }

    #[test]
    fn bus_transfers_never_overlap() {
        let mut sim = TimingSim::with_bus_log(cfg(2));
        let xs = [
            MemXact::BypassWrite { words: 2 },
            MemXact::Miss {
                is_write: false,
                fill_words: 4,
                writeback: Some(Eviction { lo: 32, words: 4 }),
            },
            MemXact::BypassRead { words: 1 },
            MemXact::BypassWrite { words: 1 },
            MemXact::ThroughWrite {
                hit: true,
                words: 1,
            },
            MemXact::BypassRead { words: 2 },
        ];
        for (i, x) in xs.iter().enumerate() {
            sim.xact((i as i64) * 8, *x);
        }
        sim.finish(xs.len() as u64);
        let log = sim.bus_log();
        assert!(log.len() >= 6);
        for w in log.windows(2) {
            assert!(
                w[1].start >= w[0].done,
                "bus transfers overlap: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn degenerate_config_matches_the_serial_closed_form() {
        // A mixed stream; with no buffer and no issue cost, total time is
        // exactly cache_refs × hit + bus_words × mem.
        let t = TimingConfig::degenerate(1, 10);
        let mut sim = TimingSim::new(t);
        let xs = [
            MemXact::Hit { is_write: false },
            MemXact::Miss {
                is_write: false,
                fill_words: 1,
                writeback: None,
            },
            MemXact::Miss {
                is_write: true,
                fill_words: 0,
                writeback: Some(Eviction { lo: 9, words: 1 }),
            },
            MemXact::BypassRead { words: 1 },
            MemXact::BypassWrite { words: 1 },
            MemXact::ThroughWrite {
                hit: false,
                words: 1,
            },
        ];
        let mut cache_refs = 0;
        let mut bus_words = 0;
        for (i, x) in xs.iter().enumerate() {
            if x.is_cache_ref() {
                cache_refs += 1;
            }
            bus_words += x.bus_words();
            sim.xact(i as i64 * 16, *x);
        }
        let r = sim.finish(0);
        assert_eq!(r.total_cycles, t.serial_access_time(cache_refs, bus_words));
        assert_eq!(r.base_cycles, 0);
    }

    #[test]
    fn reports_are_deterministic() {
        let run = || {
            let mut sim = TimingSim::new(cfg(3));
            let mut x = 0x2545_f491_4f6c_dd1du64;
            for _ in 0..10_000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let addr = (x % 512) as i64;
                let xact = match x % 5 {
                    0 => MemXact::Hit { is_write: false },
                    1 => MemXact::Miss {
                        is_write: false,
                        fill_words: 1,
                        writeback: if x.is_multiple_of(7) {
                            Some(Eviction {
                                lo: ((x >> 9) % 512) as i64,
                                words: 1,
                            })
                        } else {
                            None
                        },
                    },
                    2 => MemXact::BypassRead { words: 1 },
                    3 => MemXact::BypassWrite { words: 1 },
                    _ => MemXact::Hit { is_write: true },
                };
                sim.xact(addr, xact);
            }
            sim.finish(25_000)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn totals_decompose_into_base_plus_stalls() {
        let mut sim = TimingSim::new(cfg(2));
        let xs = [
            MemXact::BypassWrite { words: 1 },
            MemXact::Miss {
                is_write: false,
                fill_words: 1,
                writeback: None,
            },
            MemXact::BypassWrite { words: 1 },
            MemXact::BypassWrite { words: 1 },
            MemXact::Hit { is_write: false },
        ];
        for (i, x) in xs.iter().enumerate() {
            sim.xact(i as i64, *x);
        }
        let r = sim.finish(12);
        let compute = r.base_cycles + r.mem_stall_cycles();
        assert!(r.total_cycles >= compute);
        assert!(
            r.total_cycles <= compute + r.bus_busy_cycles,
            "only trailing drains may extend past compute"
        );
    }
}
