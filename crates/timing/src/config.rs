//! Timing-model parameters.

/// Latency and resource parameters of the memory-timing model (cycles).
///
/// The defaults match the repo's historical access-time model (hit = 1,
/// memory word = 10) plus a 4-entry write buffer and a single-issue core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimingConfig {
    /// Cache lookup/hit latency, charged to every reference that touches
    /// the cache (hits, and misses before they go to the bus).
    pub hit_cycles: u64,
    /// Main-memory access time per word moved over the bus; also the bus
    /// occupancy of a one-word transfer.
    pub mem_word_cycles: u64,
    /// Write-buffer depth in entries (one buffered store or write-back
    /// per entry). `0` makes every write synchronous: the core stalls for
    /// the full memory time — the degenerate, no-overlap model.
    pub write_buffer_entries: usize,
    /// Base cost of issuing one data reference on the in-order core.
    /// `0` models memory time in isolation (no pipeline accounting).
    pub issue_cycles: u64,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            hit_cycles: 1,
            mem_word_cycles: 10,
            write_buffer_entries: 4,
            issue_cycles: 1,
        }
    }
}

impl TimingConfig {
    /// The degenerate configuration: no write buffer, no overlap, no issue
    /// accounting. Under it the event-driven simulator serialises every
    /// transfer and its total time equals [`serial_access_time`]
    /// (`cache_refs × hit + bus_words × mem`) — the flat access-time model
    /// `CacheStats::access_time` has always reported.
    ///
    /// [`serial_access_time`]: TimingConfig::serial_access_time
    pub fn degenerate(hit_cycles: u64, mem_word_cycles: u64) -> Self {
        TimingConfig {
            hit_cycles,
            mem_word_cycles,
            write_buffer_entries: 0,
            issue_cycles: 0,
        }
    }

    /// Closed form of the degenerate model: every cache reference pays the
    /// hit time, every bus word pays the memory time, nothing overlaps.
    pub fn serial_access_time(&self, cache_refs: u64, bus_words: u64) -> u64 {
        cache_refs * self.hit_cycles + bus_words * self.mem_word_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_historical_latency_model() {
        let t = TimingConfig::default();
        assert_eq!(t.hit_cycles, 1);
        assert_eq!(t.mem_word_cycles, 10);
        assert_eq!(t.write_buffer_entries, 4);
        assert_eq!(t.issue_cycles, 1);
    }

    #[test]
    fn degenerate_disables_buffer_and_issue() {
        let t = TimingConfig::degenerate(2, 20);
        assert_eq!(t.write_buffer_entries, 0);
        assert_eq!(t.issue_cycles, 0);
        assert_eq!(t.serial_access_time(85, 33), 85 * 2 + 33 * 20);
    }
}
