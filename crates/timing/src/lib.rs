//! # ucm-timing — cycle-level memory-timing simulator
//!
//! The cache simulators in `ucm-cache` answer *how many* words move between
//! the processor, the cache, and main memory; this crate answers *how long
//! that traffic takes*. It consumes a stream of classified memory
//! transactions ([`MemXact`], one per data reference) and models:
//!
//! * **latencies** — a cache lookup/hit time and a per-word main-memory
//!   time ([`TimingConfig`]);
//! * **a finite write buffer** — stores retire into a FIFO of
//!   [`TimingConfig::write_buffer_entries`] slots and drain over the bus in
//!   the background; a full buffer stalls the core, and a load to an
//!   address held by a pending buffered write waits for that write to reach
//!   memory (same-address ordering — the buffer never reorders conflicting
//!   accesses);
//! * **a shared memory bus** — cache fills, write-backs, and bypass
//!   transfers contend for a single bus; a transfer occupies it for
//!   `words × mem_word_cycles`;
//! * **an in-order core** — one instruction issues per cycle; loads block
//!   until their data arrives, stores only block on a full buffer, and
//!   compute overlaps buffered drains.
//!
//! The result is a [`TimingReport`] with total cycles, CPI, and a stall
//! breakdown. Everything is integer arithmetic over the event stream: the
//! same trace and configuration always produce the same report, bit for
//! bit.
//!
//! The degenerate configuration — no write buffer, no overlap
//! ([`TimingConfig::degenerate`]) — collapses to the closed-form
//! `cache_refs × hit + bus_words × mem` access-time model
//! ([`TimingConfig::serial_access_time`]) that `ucm-cache`'s `CacheStats`
//! historically used; a property test pins the equivalence.
//!
//! ## Example
//!
//! ```rust
//! use ucm_timing::{MemXact, TimingConfig, TimingSim};
//!
//! let mut sim = TimingSim::new(TimingConfig::default());
//! sim.xact(100, MemXact::Hit { is_write: false }); // 1 issue + 1 hit
//! sim.xact(200, MemXact::BypassWrite { words: 1 }); // buffered, no stall
//! let report = sim.finish(10); // the run executed 10 VM steps
//! assert_eq!(report.total_cycles, 13); // the drain (3→13) outlasts compute (11)
//! assert_eq!(report.pending_writes, 0); // the buffer fully drained
//! ```

pub mod config;
pub mod sim;
pub mod xact;

pub use config::TimingConfig;
pub use sim::{TimingReport, TimingSim};
pub use xact::{Eviction, MemXact};
