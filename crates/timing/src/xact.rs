//! Classified memory transactions — the interface between a cache model
//! and the timing simulator.
//!
//! A cache simulator (e.g. `ucm_cache::CacheSim`) classifies each data
//! reference into one [`MemXact`]: what the memory system had to do to
//! serve it. The timing simulator turns that into cycles. Keeping the
//! classification a plain value decouples the two crates: `ucm-timing`
//! depends on nothing, so cache models of any flavour can feed it.

/// A dirty line pushed out of the cache, destined for the write buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// First word address of the evicted line.
    pub lo: i64,
    /// Words written back.
    pub words: u64,
}

/// What the memory system did for one data reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemXact {
    /// Served by the cache; no bus traffic. Covers read hits, write-back
    /// write hits, and tag-directed invalidations that drop data dead.
    Hit {
        /// `true` for stores.
        is_write: bool,
    },
    /// A miss that allocated a line: the fill occupies the bus (reads
    /// block on it) and any dirty victim goes to the write buffer.
    Miss {
        /// `true` for stores (write-allocate).
        is_write: bool,
        /// Words fetched from memory. `0` for a full-line write-allocate
        /// (nothing to fetch).
        fill_words: u64,
        /// Dirty victim pushed to the write buffer, if the allocation
        /// evicted one.
        writeback: Option<Eviction>,
    },
    /// A load served straight from memory (bypass bit, or a last-reference
    /// miss not worth a fill). Blocks the core for the transfer.
    BypassRead {
        /// Words moved.
        words: u64,
    },
    /// A store sent straight to memory through the write buffer.
    BypassWrite {
        /// Words moved.
        words: u64,
    },
    /// A write-through store: the cache is updated on a hit, and the
    /// written word always goes to memory through the write buffer.
    ThroughWrite {
        /// Whether the cache also held the line.
        hit: bool,
        /// Words moved.
        words: u64,
    },
}

impl MemXact {
    /// Words this transaction moves over the memory bus, in either
    /// direction.
    pub fn bus_words(&self) -> u64 {
        match *self {
            MemXact::Hit { .. } => 0,
            MemXact::Miss {
                fill_words,
                writeback,
                ..
            } => fill_words + writeback.map_or(0, |e| e.words),
            MemXact::BypassRead { words }
            | MemXact::BypassWrite { words }
            | MemXact::ThroughWrite { words, .. } => words,
        }
    }

    /// Whether this transaction enters the cache (the `cache_refs`
    /// population of `CacheStats`).
    pub fn is_cache_ref(&self) -> bool {
        !matches!(
            self,
            MemXact::BypassRead { .. } | MemXact::BypassWrite { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_words_counts_both_directions() {
        assert_eq!(MemXact::Hit { is_write: true }.bus_words(), 0);
        assert_eq!(
            MemXact::Miss {
                is_write: false,
                fill_words: 4,
                writeback: Some(Eviction { lo: 64, words: 4 }),
            }
            .bus_words(),
            8
        );
        assert_eq!(MemXact::BypassRead { words: 1 }.bus_words(), 1);
        assert_eq!(
            MemXact::ThroughWrite {
                hit: true,
                words: 1
            }
            .bus_words(),
            1
        );
    }

    #[test]
    fn cache_ref_classification_excludes_bypasses() {
        assert!(MemXact::Hit { is_write: false }.is_cache_ref());
        assert!(MemXact::ThroughWrite {
            hit: false,
            words: 1
        }
        .is_cache_ref());
        assert!(!MemXact::BypassRead { words: 1 }.is_cache_ref());
        assert!(!MemXact::BypassWrite { words: 1 }.is_cache_ref());
    }
}
