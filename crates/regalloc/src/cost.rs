//! Spill-cost estimation.
//!
//! Classic Chaitin weighting: each static occurrence (def or use) of a
//! register costs `10^loop_depth`, so values busy inside loops are expensive
//! to spill.

use ucm_analysis::{Dominators, LoopInfo};
use ucm_ir::{Cfg, Function, VReg};

/// Per-register spill costs for one function.
#[derive(Debug, Clone)]
pub struct SpillCosts {
    costs: Vec<f64>,
}

impl SpillCosts {
    /// Computes occurrence-weighted costs for every register of `func`.
    pub fn compute(func: &Function, cfg: &Cfg) -> Self {
        let dom = Dominators::compute(func, cfg);
        let loops = LoopInfo::compute(func, cfg, &dom);
        let mut costs = vec![0.0; func.num_vregs as usize];
        let mut uses = Vec::new();
        for bid in func.block_ids() {
            let weight = 10f64.powi(loops.depth(bid).min(8) as i32);
            for instr in &func.block(bid).instrs {
                if let Some(d) = instr.def() {
                    costs[d.index()] += weight;
                }
                uses.clear();
                instr.uses_into(&mut uses);
                for &u in &uses {
                    costs[u.index()] += weight;
                }
            }
            for u in func.block(bid).term.uses() {
                costs[u.index()] += weight;
            }
        }
        for &p in &func.params {
            costs[p.index()] += 1.0;
        }
        SpillCosts { costs }
    }

    /// The cost of spilling `v`.
    pub fn of(&self, v: VReg) -> f64 {
        self.costs[v.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucm_ir::builder::Builder;
    use ucm_ir::OpCode;

    #[test]
    fn loop_occurrences_cost_more() {
        let mut b = Builder::new("f", false);
        let outside = b.const_(1);
        let i = b.const_(0);
        let head = b.block();
        let body = b.block();
        let exit = b.block();
        b.jump(head);
        b.switch_to(head);
        let c = b.binary(OpCode::Lt, i, 10);
        b.branch(c, body, exit);
        b.switch_to(body);
        let i2 = b.binary(OpCode::Add, i, 1);
        b.copy_to(i, i2);
        b.jump(head);
        b.switch_to(exit);
        b.print(outside);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let costs = SpillCosts::compute(&f, &cfg);
        assert!(
            costs.of(i) > costs.of(outside) * 5.0,
            "loop register {} must dominate straight-line register {}",
            costs.of(i),
            costs.of(outside)
        );
    }

    #[test]
    fn unused_register_is_free() {
        let mut b = Builder::new("f", false);
        let x = b.const_(1);
        b.print(x);
        b.ret(None);
        let mut f = b.finish();
        let unused = f.new_vreg();
        let cfg = Cfg::new(&f);
        let costs = SpillCosts::compute(&f, &cfg);
        assert_eq!(costs.of(unused), 0.0);
        assert!(costs.of(x) >= 2.0);
    }
}
