//! Usage-count allocation (Freiburghouse 1974).
//!
//! The second classical scheme the paper cites (§2.1.2): registers are handed
//! out greedily in decreasing order of (loop-weighted) reference frequency,
//! subject to interference. Values that find no free register are spilled.

use crate::color::ColorResult;
use crate::cost::SpillCosts;
use crate::interference::InterferenceGraph;
use std::collections::HashSet;
use ucm_ir::VReg;

/// Greedy usage-ordered coloring of `graph` with `k` colors.
///
/// Registers in `no_spill` are placed first (highest priority) so spill
/// temporaries always receive a register.
pub fn color_by_usage(
    graph: &InterferenceGraph,
    k: usize,
    costs: &SpillCosts,
    no_spill: &HashSet<VReg>,
) -> ColorResult {
    let n = graph.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        let pa = no_spill.contains(&VReg(a));
        let pb = no_spill.contains(&VReg(b));
        pb.cmp(&pa)
            .then(
                costs
                    .of(VReg(b))
                    .partial_cmp(&costs.of(VReg(a)))
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then(a.cmp(&b))
    });
    let mut colors: Vec<Option<u8>> = vec![None; n];
    let mut spills = Vec::new();
    let mut used = vec![false; k];
    for i in order {
        used.fill(false);
        for nb in graph.neighbors(VReg(i)) {
            if let Some(c) = colors[nb.index()] {
                used[c as usize] = true;
            }
        }
        match used.iter().position(|u| !u) {
            Some(c) => colors[i as usize] = Some(c as u8),
            None => spills.push(VReg(i)),
        }
    }
    spills.sort_unstable();
    ColorResult { colors, spills }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucm_analysis::Liveness;
    use ucm_ir::builder::Builder;
    use ucm_ir::{Cfg, Function, OpCode};

    fn setup(f: &Function) -> (InterferenceGraph, SpillCosts) {
        let cfg = Cfg::new(f);
        let lv = Liveness::compute(f, &cfg);
        (
            InterferenceGraph::build(f, &cfg, &lv),
            SpillCosts::compute(f, &cfg),
        )
    }

    #[test]
    fn hot_values_get_registers_first() {
        // A loop-busy register plus interfering cold registers with k=1:
        // the loop register must win.
        let mut b = Builder::new("f", false);
        let cold = b.const_(7);
        let i = b.const_(0);
        let head = b.block();
        let body = b.block();
        let exit = b.block();
        b.jump(head);
        b.switch_to(head);
        let c = b.binary(OpCode::Lt, i, 100);
        b.branch(c, body, exit);
        b.switch_to(body);
        let i2 = b.binary(OpCode::Add, i, 1);
        b.copy_to(i, i2);
        b.jump(head);
        b.switch_to(exit);
        b.print(cold);
        b.ret(None);
        let f = b.finish();
        let (g, costs) = setup(&f);
        let r = color_by_usage(&g, 1, &costs, &HashSet::new());
        assert!(r.colors[i.index()].is_some(), "hot loop counter kept");
        assert!(r.spills.contains(&cold), "cold value spilled");
    }

    #[test]
    fn respects_interference() {
        let mut b = Builder::new("f", false);
        let x = b.const_(1);
        let y = b.const_(2);
        let s = b.binary(OpCode::Add, x, y);
        b.print(s);
        b.ret(None);
        let f = b.finish();
        let (g, costs) = setup(&f);
        let r = color_by_usage(&g, 2, &costs, &HashSet::new());
        assert!(r.spills.is_empty());
        assert_ne!(r.colors[x.index()], r.colors[y.index()]);
    }

    #[test]
    fn protected_temps_win_over_hot_values() {
        let mut b = Builder::new("f", false);
        let x = b.const_(1);
        let y = b.const_(2);
        let s = b.binary(OpCode::Add, x, y);
        b.print(s);
        b.print(x);
        b.print(y);
        b.ret(None);
        let f = b.finish();
        let (g, costs) = setup(&f);
        let protected: HashSet<VReg> = [y].into_iter().collect();
        let r = color_by_usage(&g, 1, &costs, &protected);
        assert!(r.colors[y.index()].is_some());
        assert!(!r.spills.contains(&y));
    }
}
