//! Spill-code insertion.
//!
//! Following the unified model (paper §4.2): a spilled value is stored to a
//! fresh frame slot tagged [`RefName::Spill`](ucm_ir::RefName::Spill). The store is later annotated
//! `AmSp_STORE` (through the cache) and each reload `UmAm_LOAD` (take from
//! cache and invalidate — the cached copy dies on reload).

use std::collections::{HashMap, HashSet};
use ucm_ir::{Function, Instr, MemRef, SlotKind, Terminator, VReg};

/// Rewrites `func`, spilling every register in `spilled`.
///
/// Each use is preceded by a reload into a fresh temporary; each def is
/// followed by a store from a fresh temporary. Returns the set of
/// newly-created temporaries (they must not be chosen for spilling again —
/// their live ranges are already minimal).
pub fn insert_spill_code(func: &mut Function, spilled: &HashSet<VReg>) -> HashSet<VReg> {
    let mut slots: HashMap<VReg, ucm_ir::SlotId> = HashMap::new();
    for &v in spilled {
        let slot = func.new_slot(format!("spill_{v}"), 1, SlotKind::Spill);
        slots.insert(v, slot);
    }
    let mut temps = HashSet::new();

    // Spilled parameters: store them at function entry, then treat every
    // other occurrence through the slot.
    let entry = func.entry;
    let param_stores: Vec<Instr> = func
        .params
        .iter()
        .filter(|p| spilled.contains(p))
        .map(|&p| Instr::Store {
            src: p,
            mem: MemRef::spill(slots[&p]),
        })
        .collect();

    for bid in (0..func.blocks.len()).map(ucm_ir::BlockId::from_index) {
        let old_instrs = std::mem::take(&mut func.block_mut(bid).instrs);
        let mut new_instrs = Vec::with_capacity(old_instrs.len());
        if bid == entry {
            new_instrs.extend(param_stores.iter().cloned());
        }
        for mut instr in old_instrs {
            // Reload before each use.
            let uses: Vec<VReg> = {
                let mut u = instr.uses();
                u.sort_unstable();
                u.dedup();
                u.retain(|v| spilled.contains(v));
                u
            };
            let mut replace: HashMap<VReg, VReg> = HashMap::new();
            for v in uses {
                let t = func.new_vreg();
                temps.insert(t);
                new_instrs.push(Instr::Load {
                    dst: t,
                    mem: MemRef::spill(slots[&v]),
                });
                replace.insert(v, t);
            }
            if !replace.is_empty() {
                rewrite_uses(&mut instr, &replace);
            }
            // Store after each def.
            let def = instr.def().filter(|d| spilled.contains(d));
            if let Some(d) = def {
                let t = func.new_vreg();
                temps.insert(t);
                rewrite_def(&mut instr, t);
                new_instrs.push(instr);
                new_instrs.push(Instr::Store {
                    src: t,
                    mem: MemRef::spill(slots[&d]),
                });
            } else {
                new_instrs.push(instr);
            }
        }
        // Terminator uses get reloads at the end of the block.
        let term_uses: Vec<VReg> = {
            let mut u = func.block(bid).term.uses();
            u.sort_unstable();
            u.dedup();
            u.retain(|v| spilled.contains(v));
            u
        };
        let mut replace: HashMap<VReg, VReg> = HashMap::new();
        for v in term_uses {
            let t = func.new_vreg();
            temps.insert(t);
            new_instrs.push(Instr::Load {
                dst: t,
                mem: MemRef::spill(slots[&v]),
            });
            replace.insert(v, t);
        }
        let block = func.block_mut(bid);
        block.instrs = new_instrs;
        if !replace.is_empty() {
            match &mut block.term {
                Terminator::Branch { cond, .. } => {
                    if let Some(&t) = replace.get(cond) {
                        *cond = t;
                    }
                }
                Terminator::Return(Some(v)) => {
                    if let Some(&t) = replace.get(v) {
                        *v = t;
                    }
                }
                _ => {}
            }
        }
    }
    temps
}

fn rewrite_uses(instr: &mut Instr, replace: &HashMap<VReg, VReg>) {
    let sub = |v: &mut VReg| {
        if let Some(&t) = replace.get(v) {
            *v = t;
        }
    };
    match instr {
        Instr::Copy { src, .. } | Instr::Neg { src, .. } | Instr::Not { src, .. } => sub(src),
        Instr::Binary { lhs, rhs, .. } => {
            sub(lhs);
            if let ucm_ir::Operand::Reg(r) = rhs {
                sub(r);
            }
        }
        Instr::Load { mem, .. } => rewrite_mem(mem, replace),
        Instr::Store { src, mem } => {
            sub(src);
            rewrite_mem(mem, replace);
        }
        Instr::Call { args, .. } => args.iter_mut().for_each(sub),
        Instr::Print { src } => sub(src),
        Instr::Const { .. } | Instr::AddrOf { .. } => {}
    }
}

fn rewrite_mem(mem: &mut MemRef, replace: &HashMap<VReg, VReg>) {
    if let ucm_ir::MemAddr::Reg(r) = &mut mem.addr {
        if let Some(&t) = replace.get(r) {
            *r = t;
        }
    }
    // The symbolic Deref name keeps the original pointer register: alias
    // classification has already been computed against it, and the reload
    // temp carries the same pointer value.
}

fn rewrite_def(instr: &mut Instr, new_dst: VReg) {
    match instr {
        Instr::Const { dst, .. }
        | Instr::Copy { dst, .. }
        | Instr::Binary { dst, .. }
        | Instr::Neg { dst, .. }
        | Instr::Not { dst, .. }
        | Instr::AddrOf { dst, .. }
        | Instr::Load { dst, .. } => *dst = new_dst,
        Instr::Call { dst, .. } => *dst = Some(new_dst),
        Instr::Store { .. } | Instr::Print { .. } => unreachable!("no def to rewrite"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucm_ir::builder::Builder;
    use ucm_ir::{OpCode, RefName};

    #[test]
    fn spill_rewrites_defs_and_uses() {
        let mut b = Builder::new("f", true);
        let x = b.param();
        let y = b.binary(OpCode::Add, x, 1);
        let z = b.binary(OpCode::Mul, y, y);
        b.ret(Some(z));
        let mut f = b.finish();
        let temps = insert_spill_code(&mut f, &HashSet::from([y]));
        // One store after y's def, one reload before the mul (deduped use).
        let spill_stores = f
            .instrs()
            .filter(|(_, i)| {
                matches!(i, Instr::Store { mem, .. } if matches!(mem.name, RefName::Spill(_)))
            })
            .count();
        let spill_loads = f
            .instrs()
            .filter(|(_, i)| {
                matches!(i, Instr::Load { mem, .. } if matches!(mem.name, RefName::Spill(_)))
            })
            .count();
        assert_eq!(spill_stores, 1);
        assert_eq!(spill_loads, 1);
        assert_eq!(temps.len(), 2);
        assert_eq!(f.frame.len(), 1);
        assert_eq!(f.frame[0].kind, SlotKind::Spill);
        // y itself no longer appears anywhere.
        for (_, i) in f.instrs() {
            assert_ne!(i.def(), Some(y));
            assert!(!i.uses().contains(&y));
        }
    }

    #[test]
    fn spilled_param_stored_at_entry() {
        let mut b = Builder::new("f", true);
        let p = b.param();
        let r = b.binary(OpCode::Add, p, 1);
        b.ret(Some(r));
        let mut f = b.finish();
        insert_spill_code(&mut f, &HashSet::from([p]));
        let first = &f.block(f.entry).instrs[0];
        assert!(
            matches!(first, Instr::Store { src, mem } if *src == p
                && matches!(mem.name, RefName::Spill(_))),
            "entry must begin with the param spill store, got {first}"
        );
    }

    #[test]
    fn terminator_use_reloaded() {
        let mut b = Builder::new("f", true);
        let x = b.const_(7);
        b.ret(Some(x));
        let mut f = b.finish();
        insert_spill_code(&mut f, &HashSet::from([x]));
        let entry = f.block(f.entry);
        // const; store; reload; return t
        assert_eq!(entry.instrs.len(), 3);
        let Terminator::Return(Some(v)) = entry.term else {
            panic!("expected value return");
        };
        assert_ne!(v, x, "return must use the reload temp");
    }

    #[test]
    fn branch_condition_reloaded() {
        let mut b = Builder::new("f", false);
        let c = b.const_(1);
        let t = b.block();
        let e = b.block();
        b.branch(c, t, e);
        b.switch_to(t);
        b.ret(None);
        b.switch_to(e);
        b.ret(None);
        let mut f = b.finish();
        insert_spill_code(&mut f, &HashSet::from([c]));
        let Terminator::Branch { cond, .. } = f.block(f.entry).term else {
            panic!("expected branch");
        };
        assert_ne!(cond, c);
    }

    #[test]
    fn duplicate_uses_reload_once() {
        let mut b = Builder::new("f", true);
        let x = b.const_(3);
        let y = b.binary(OpCode::Mul, x, x); // x used twice in one instr
        b.ret(Some(y));
        let mut f = b.finish();
        insert_spill_code(&mut f, &HashSet::from([x]));
        let loads = f
            .instrs()
            .filter(|(_, i)| matches!(i, Instr::Load { .. }))
            .count();
        assert_eq!(loads, 1, "one reload feeds both operands");
    }
}
