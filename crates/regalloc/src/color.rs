//! Chaitin-Briggs graph coloring (simplify / optimistic select).

use crate::cost::SpillCosts;
use crate::interference::InterferenceGraph;
use std::collections::HashSet;
use ucm_ir::VReg;

/// Result of one coloring attempt.
#[derive(Debug, Clone)]
pub struct ColorResult {
    /// Color per register where successful.
    pub colors: Vec<Option<u8>>,
    /// Registers that could not be colored and must be spilled.
    pub spills: Vec<VReg>,
}

/// Attempts to color `graph` with `k` colors.
///
/// Registers in `no_spill` (spill temporaries) are never chosen as spill
/// candidates; if one of them cannot be colored the caller must raise `k`.
pub fn color(
    graph: &InterferenceGraph,
    k: usize,
    costs: &SpillCosts,
    no_spill: &HashSet<VReg>,
) -> ColorResult {
    let n = graph.len();
    let mut removed = vec![false; n];
    let mut degree: Vec<usize> = (0..n).map(|i| graph.degree(VReg(i as u32))).collect();
    let mut stack: Vec<u32> = Vec::with_capacity(n);

    // Simplify: repeatedly remove a trivially colorable node; when stuck,
    // optimistically remove the cheapest spill candidate (Briggs).
    for _ in 0..n {
        let mut pick = None;
        for i in 0..n {
            if !removed[i] && degree[i] < k {
                pick = Some(i);
                break;
            }
        }
        let pick = pick.unwrap_or_else(|| {
            // All remaining nodes are high-degree: choose the best spill
            // candidate by cost/degree, skipping protected temps if possible.
            let mut best: Option<(usize, f64)> = None;
            for i in 0..n {
                if removed[i] || no_spill.contains(&VReg(i as u32)) {
                    continue;
                }
                let metric = costs.of(VReg(i as u32)) / degree[i].max(1) as f64;
                if best.is_none_or(|(_, m)| metric < m) {
                    best = Some((i, metric));
                }
            }
            match best {
                Some((i, _)) => i,
                None => {
                    // Only protected temps remain; push the lowest-degree one
                    // and hope optimistic selection succeeds.
                    (0..n)
                        .filter(|&i| !removed[i])
                        .min_by_key(|&i| degree[i])
                        .expect("loop bound guarantees a remaining node")
                }
            }
        });
        removed[pick] = true;
        stack.push(pick as u32);
        for nb in graph.neighbors(VReg(pick as u32)) {
            if !removed[nb.index()] {
                degree[nb.index()] -= 1;
            }
        }
    }

    // Select: pop in reverse, assigning the lowest color free among colored
    // neighbors; failures become real spills.
    let mut colors: Vec<Option<u8>> = vec![None; n];
    let mut spills = Vec::new();
    let mut used = vec![false; k];
    while let Some(i) = stack.pop() {
        used.fill(false);
        for nb in graph.neighbors(VReg(i)) {
            if let Some(c) = colors[nb.index()] {
                used[c as usize] = true;
            }
        }
        match used.iter().position(|u| !u) {
            Some(c) => colors[i as usize] = Some(c as u8),
            None => spills.push(VReg(i)),
        }
    }
    spills.sort_unstable();
    ColorResult { colors, spills }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interference::InterferenceGraph;
    use ucm_analysis::Liveness;
    use ucm_ir::builder::Builder;
    use ucm_ir::{Cfg, Function, OpCode};

    fn setup(f: &Function) -> (InterferenceGraph, SpillCosts) {
        let cfg = Cfg::new(f);
        let lv = Liveness::compute(f, &cfg);
        (
            InterferenceGraph::build(f, &cfg, &lv),
            SpillCosts::compute(f, &cfg),
        )
    }

    /// n mutually live constants summed at the end → an n-clique.
    fn clique(n: usize) -> Function {
        let mut b = Builder::new("f", false);
        let regs: Vec<_> = (0..n).map(|i| b.const_(i as i64)).collect();
        let mut acc = regs[0];
        for &r in &regs[1..] {
            acc = b.binary(OpCode::Add, acc, r);
        }
        b.print(acc);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn colors_clique_with_exactly_enough_registers() {
        let f = clique(4);
        let (g, costs) = setup(&f);
        let r = color(&g, 4, &costs, &HashSet::new());
        assert!(r.spills.is_empty());
        // All four constants pairwise interfere → four distinct colors.
        let cs: HashSet<u8> = (0..4).map(|i| r.colors[i].unwrap()).collect();
        assert_eq!(cs.len(), 4);
    }

    #[test]
    fn spills_when_registers_insufficient() {
        let f = clique(5);
        let (g, costs) = setup(&f);
        let r = color(&g, 3, &costs, &HashSet::new());
        assert!(!r.spills.is_empty());
    }

    #[test]
    fn adjacent_nodes_get_distinct_colors() {
        let f = clique(6);
        let (g, costs) = setup(&f);
        let r = color(&g, 6, &costs, &HashSet::new());
        assert!(r.spills.is_empty());
        for i in 0..g.len() {
            for nb in g.neighbors(VReg(i as u32)) {
                if let (Some(a), Some(b)) = (r.colors[i], r.colors[nb.index()]) {
                    assert_ne!(a, b, "neighbors {i} and {nb} share color");
                }
            }
        }
    }

    #[test]
    fn chain_needs_few_colors() {
        // Sequential values: 2 colors suffice regardless of length.
        let mut b = Builder::new("f", false);
        let mut prev = b.const_(0);
        for i in 1..20 {
            let next = b.binary(OpCode::Add, prev, i);
            prev = next;
        }
        b.print(prev);
        b.ret(None);
        let f = b.finish();
        let (g, costs) = setup(&f);
        let r = color(&g, 2, &costs, &HashSet::new());
        assert!(r.spills.is_empty(), "a chain is 2-colorable");
    }

    #[test]
    fn no_spill_set_is_respected() {
        let f = clique(5);
        let (g, costs) = setup(&f);
        let protected: HashSet<VReg> = [VReg(0), VReg(1)].into_iter().collect();
        let r = color(&g, 3, &costs, &protected);
        for s in &r.spills {
            assert!(
                !protected.contains(s),
                "protected register {s} chosen for spilling"
            );
        }
    }
}
