//! # ucm-regalloc — register allocation with cache-directed spilling
//!
//! Implements both allocator families the paper cites (§2.1.2): Chaitin-style
//! **graph coloring** with Briggs optimistic selection, and Freiburghouse
//! **usage counts**. Spill code follows the unified model of §4.2: spilled
//! values go to frame slots tagged [`ucm_ir::RefName::Spill`], which the
//! unified-management pass routes *through the cache* on store
//! (`AmSp_STORE`) and *take-and-invalidate* on reload (`UmAm_LOAD`).
//!
//! ## Example
//!
//! ```rust
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use ucm_regalloc::{allocate, Strategy};
//!
//! let checked = ucm_lang::parse_and_check(
//!     "fn main() { let a: int = 1; let b: int = 2; let c: int = 3;
//!                  print(a + b * c); }",
//! )?;
//! let module = ucm_ir::lower(&checked)?;
//! let alloc = allocate(module.func(module.main).clone(), 4, Strategy::Coloring)?;
//! assert_eq!(alloc.spilled_count, 0);
//! # Ok(())
//! # }
//! ```

pub mod color;
pub mod cost;
pub mod interference;
pub mod spill;
pub mod usage;

use std::collections::HashSet;
use std::error::Error;
use std::fmt;
use ucm_analysis::Liveness;
use ucm_ir::{Cfg, Function, VReg};

pub use color::ColorResult;
pub use cost::SpillCosts;
pub use interference::InterferenceGraph;
pub use spill::insert_spill_code;

/// Which allocator to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Strategy {
    /// Chaitin-Briggs graph coloring (default).
    #[default]
    Coloring,
    /// Freiburghouse usage counts.
    UsageCount,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::Coloring => write!(f, "coloring"),
            Strategy::UsageCount => write!(f, "usage-count"),
        }
    }
}

/// Allocation failure: the machine has too few registers for the program's
/// spill temporaries (raise `k`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocError {
    /// Function that failed.
    pub func: String,
    /// Register count that was attempted.
    pub k: usize,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "register allocation of `{}` cannot converge with {} registers; \
             increase the register count",
            self.func, self.k
        )
    }
}

impl Error for AllocError {}

/// A fully register-allocated function.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// The (possibly spill-rewritten) function.
    pub func: Function,
    /// Physical register per virtual register (dense by final vreg index).
    /// Registers that never occur keep an arbitrary color.
    pub assignment: Vec<Option<u8>>,
    /// How many original registers were spilled.
    pub spilled_count: usize,
    /// How many build-color-spill rounds ran.
    pub rounds: usize,
}

impl Allocation {
    /// The physical register assigned to `v`, if colored.
    pub fn reg_of(&self, v: VReg) -> Option<u8> {
        self.assignment.get(v.index()).copied().flatten()
    }
}

/// Allocates `func` onto `k` physical registers using `strategy`.
///
/// Runs build → color → spill rounds until everything is colored.
///
/// # Errors
///
/// Returns [`AllocError`] if spill temporaries themselves cannot be colored,
/// i.e. `k` is smaller than the function's irreducible register need
/// (roughly: its widest single instruction, including call argument lists).
pub fn allocate(
    mut func: Function,
    k: usize,
    strategy: Strategy,
) -> Result<Allocation, AllocError> {
    let mut no_spill: HashSet<VReg> = HashSet::new();
    let mut spilled_count = 0;
    let mut rounds = 0;
    loop {
        rounds += 1;
        let cfg = Cfg::new(&func);
        let liveness = Liveness::compute(&func, &cfg);
        let graph = InterferenceGraph::build(&func, &cfg, &liveness);
        let costs = SpillCosts::compute(&func, &cfg);
        let result = match strategy {
            Strategy::Coloring => color::color(&graph, k, &costs, &no_spill),
            Strategy::UsageCount => usage::color_by_usage(&graph, k, &costs, &no_spill),
        };
        if result.spills.is_empty() {
            return Ok(Allocation {
                func,
                assignment: result.colors,
                spilled_count,
                rounds,
            });
        }
        if rounds > 60 || result.spills.iter().any(|s| no_spill.contains(s)) {
            return Err(AllocError {
                func: func.name.clone(),
                k,
            });
        }
        spilled_count += result.spills.len();
        let spill_set: HashSet<VReg> = result.spills.iter().copied().collect();
        let temps = insert_spill_code(&mut func, &spill_set);
        no_spill.extend(temps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucm_ir::{lower, Instr, Module};
    use ucm_lang::parse_and_check;

    fn lower_main(src: &str) -> (Module, Function) {
        let m = lower(&parse_and_check(src).unwrap()).unwrap();
        let f = m.func(m.main).clone();
        (m, f)
    }

    /// Checks the fundamental invariant: interfering registers have
    /// different colors and every occurring register is colored.
    fn assert_valid(alloc: &Allocation, k: usize) {
        let cfg = Cfg::new(&alloc.func);
        let liveness = Liveness::compute(&alloc.func, &cfg);
        let graph = InterferenceGraph::build(&alloc.func, &cfg, &liveness);
        for (_, instr) in alloc.func.instrs() {
            let mut occurring = instr.uses();
            occurring.extend(instr.def());
            for v in occurring {
                let c = alloc
                    .reg_of(v)
                    .unwrap_or_else(|| panic!("{v} occurs but has no register"));
                assert!((c as usize) < k);
                for nb in graph.neighbors(v) {
                    if let Some(cn) = alloc.reg_of(nb) {
                        if graph.interferes(v, nb) {
                            assert_ne!(c, cn, "{v} and {nb} interfere but share r{c}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn simple_function_needs_no_spills() {
        let (_, f) = lower_main("fn main() { let x: int = 2; print(x * x + 1); }");
        for strategy in [Strategy::Coloring, Strategy::UsageCount] {
            let a = allocate(f.clone(), 8, strategy).unwrap();
            assert_eq!(a.spilled_count, 0, "{strategy}");
            assert_valid(&a, 8);
        }
    }

    #[test]
    fn pressure_forces_spills_and_still_validates() {
        // Nine simultaneously-live values with k=4.
        let src = "fn main() { \
            let a: int = 1; let b: int = 2; let c: int = 3; \
            let d: int = 4; let e: int = 5; let f: int = 6; \
            let g: int = 7; let h: int = 8; let i: int = 9; \
            print(a+b+c+d+e+f+g+h+i); \
            print(i+h+g+f+e+d+c+b+a); }";
        let (_, f) = lower_main(src);
        for strategy in [Strategy::Coloring, Strategy::UsageCount] {
            let a = allocate(f.clone(), 4, strategy).unwrap();
            assert!(a.spilled_count > 0, "{strategy} must spill");
            assert_valid(&a, 4);
            // Spill code appeared.
            let spill_ops = a
                .func
                .instrs()
                .filter(|(_, i)| {
                    i.mem()
                        .is_some_and(|m| matches!(m.name, ucm_ir::RefName::Spill(_)))
                })
                .count();
            assert!(spill_ops > 0);
        }
    }

    #[test]
    fn coloring_rounds_converge() {
        let src = "fn main() { let i: int = 0; let s: int = 0; let t: int = 1; \
            while i < 10 { s = s + i * t; t = t + s; i = i + 1; } \
            print(s); print(t); }";
        let (_, f) = lower_main(src);
        let a = allocate(f, 3, Strategy::Coloring).unwrap();
        assert_valid(&a, 3);
        assert!(a.rounds <= 10, "convergence took {} rounds", a.rounds);
    }

    #[test]
    fn too_few_registers_is_an_error() {
        let (_, f) = lower_main("fn main() { let a: int = 1; let b: int = 2; print(a + b); }");
        let err = allocate(f, 1, Strategy::Coloring).unwrap_err();
        assert!(err.to_string().contains("1 registers"));
    }

    #[test]
    fn loop_heavy_function_with_various_register_counts() {
        let src = "global acc: int; \
            fn main() { let i: int = 0; let j: int = 0; \
            while i < 5 { j = 0; while j < 5 { acc = acc + i * j; j = j + 1; } i = i + 1; } \
            print(acc); }";
        let (_, f) = lower_main(src);
        for k in [3, 4, 8, 16] {
            let a = allocate(f.clone(), k, Strategy::Coloring).unwrap();
            assert_valid(&a, k);
        }
    }

    #[test]
    fn params_receive_distinct_registers() {
        let m = lower(
            &parse_and_check(
                "fn f(a: int, b: int, c: int) -> int { return a + b + c; } \
                 fn main() { print(f(1, 2, 3)); }",
            )
            .unwrap(),
        )
        .unwrap();
        let f = m.funcs[0].clone();
        let a = allocate(f, 4, Strategy::Coloring).unwrap();
        assert_valid(&a, 4);
        let regs: Vec<u8> = a
            .func
            .params
            .iter()
            .map(|&p| a.reg_of(p).unwrap())
            .collect();
        let unique: HashSet<u8> = regs.iter().copied().collect();
        assert_eq!(unique.len(), 3);
    }

    #[test]
    fn spill_keeps_program_shape() {
        let (_, f) = lower_main(
            "fn main() { let a: int = 1; let b: int = 2; let c: int = 3; \
             print(a + b + c); print(c + b + a); }",
        );
        let before_prints = f
            .instrs()
            .filter(|(_, i)| matches!(i, Instr::Print { .. }))
            .count();
        let a = allocate(f, 2, Strategy::Coloring).unwrap();
        let after_prints = a
            .func
            .instrs()
            .filter(|(_, i)| matches!(i, Instr::Print { .. }))
            .count();
        assert_eq!(before_prints, after_prints);
        assert_valid(&a, 2);
    }
}
