//! Live-range interference graph construction.
//!
//! Two virtual registers interfere when one is defined at a point where the
//! other is live — the classic Chaitin construction: walking each block
//! backward, every def adds edges to the registers live after it (for a
//! copy, the source is exempted, which enables coalescing-friendly
//! assignment downstream).

use std::collections::HashSet;
use ucm_analysis::Liveness;
use ucm_ir::{Cfg, Function, Instr, VReg};

/// Undirected interference graph over the virtual registers of one function.
#[derive(Debug, Clone)]
pub struct InterferenceGraph {
    adj: Vec<HashSet<u32>>,
}

impl InterferenceGraph {
    /// Builds the graph for `func`.
    pub fn build(func: &Function, _cfg: &Cfg, liveness: &Liveness) -> Self {
        let n = func.num_vregs as usize;
        let mut g = InterferenceGraph {
            adj: vec![HashSet::new(); n],
        };
        for bid in func.block_ids() {
            let per_out = liveness.instr_live_out(func, bid);
            for (idx, instr) in func.block(bid).instrs.iter().enumerate() {
                let Some(d) = instr.def() else { continue };
                let copy_src = match instr {
                    Instr::Copy { src, .. } => Some(*src),
                    _ => None,
                };
                for l in per_out[idx].iter() {
                    let l = VReg(l as u32);
                    if l != d && copy_src != Some(l) {
                        g.add_edge(d, l);
                    }
                }
            }
        }
        // Parameters are all defined at entry: each interferes with every
        // other register live into the entry block.
        let live_in = &liveness.live_in[func.entry.index()];
        for &p in &func.params {
            for l in live_in.iter() {
                let l = VReg(l as u32);
                if l != p {
                    g.add_edge(p, l);
                }
            }
        }
        g
    }

    /// Adds an undirected edge.
    pub fn add_edge(&mut self, a: VReg, b: VReg) {
        if a == b {
            return;
        }
        self.adj[a.index()].insert(b.0);
        self.adj[b.index()].insert(a.0);
    }

    /// Whether `a` and `b` interfere.
    pub fn interferes(&self, a: VReg, b: VReg) -> bool {
        self.adj[a.index()].contains(&b.0)
    }

    /// Degree of `v`.
    pub fn degree(&self, v: VReg) -> usize {
        self.adj[v.index()].len()
    }

    /// Neighbors of `v`.
    pub fn neighbors(&self, v: VReg) -> impl Iterator<Item = VReg> + '_ {
        self.adj[v.index()].iter().map(|&i| VReg(i))
    }

    /// Number of nodes (registers).
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucm_ir::builder::Builder;
    use ucm_ir::OpCode;

    fn graph_of(f: &Function) -> InterferenceGraph {
        let cfg = Cfg::new(f);
        let lv = Liveness::compute(f, &cfg);
        InterferenceGraph::build(f, &cfg, &lv)
    }

    #[test]
    fn simultaneously_live_interfere() {
        let mut b = Builder::new("f", false);
        let x = b.const_(1);
        let y = b.const_(2);
        let s = b.binary(OpCode::Add, x, y);
        b.print(s);
        b.ret(None);
        let f = b.finish();
        let g = graph_of(&f);
        assert!(g.interferes(x, y));
        // s is defined when x and y die: no interference.
        assert!(!g.interferes(s, x));
        assert!(!g.interferes(s, y));
    }

    #[test]
    fn sequential_values_do_not_interfere() {
        let mut b = Builder::new("f", false);
        let x = b.const_(1);
        b.print(x);
        let y = b.const_(2);
        b.print(y);
        b.ret(None);
        let f = b.finish();
        let g = graph_of(&f);
        assert!(!g.interferes(x, y));
    }

    #[test]
    fn copy_source_does_not_interfere_with_dest() {
        let mut b = Builder::new("f", false);
        let x = b.const_(1);
        let y = b.copy(x);
        b.print(y);
        b.ret(None);
        let f = b.finish();
        let g = graph_of(&f);
        assert!(!g.interferes(x, y), "copy-related regs may share a color");
    }

    #[test]
    fn copy_source_live_after_still_interferes_via_later_def() {
        // y = x; print(x); x redefined while y live → must interfere.
        let mut b = Builder::new("f", false);
        let x = b.const_(1);
        let y = b.copy(x);
        b.print(x);
        b.emit(ucm_ir::Instr::Const { dst: x, value: 3 });
        b.print(y);
        b.print(x);
        b.ret(None);
        let f = b.finish();
        let g = graph_of(&f);
        assert!(g.interferes(x, y));
    }

    #[test]
    fn params_interfere_with_each_other_when_both_used() {
        let mut b = Builder::new("f", true);
        let p0 = b.param();
        let p1 = b.param();
        let s = b.binary(OpCode::Add, p0, p1);
        b.ret(Some(s));
        let f = b.finish();
        let g = graph_of(&f);
        assert!(g.interferes(p0, p1));
    }

    #[test]
    fn dead_def_interferes_with_live_across_value() {
        let mut b = Builder::new("f", false);
        let x = b.const_(1);
        let dead = b.const_(99); // never used, but x live across
        b.print(x);
        b.ret(None);
        let f = b.finish();
        let g = graph_of(&f);
        assert!(g.interferes(dead, x), "writing dead must not clobber x");
    }

    #[test]
    fn loop_counter_interferes_with_accumulator() {
        let mut b = Builder::new("f", false);
        let i = b.const_(0);
        let acc = b.const_(0);
        let head = b.block();
        let body = b.block();
        let exit = b.block();
        b.jump(head);
        b.switch_to(head);
        let c = b.binary(OpCode::Lt, i, 10);
        b.branch(c, body, exit);
        b.switch_to(body);
        let acc2 = b.binary(OpCode::Add, acc, i);
        b.copy_to(acc, acc2);
        let i2 = b.binary(OpCode::Add, i, 1);
        b.copy_to(i, i2);
        b.jump(head);
        b.switch_to(exit);
        b.print(acc);
        b.ret(None);
        let f = b.finish();
        let g = graph_of(&f);
        assert!(g.interferes(i, acc));
        assert_eq!(g.len(), f.num_vregs as usize);
    }
}
