//! Token definitions for the Mini language.

use std::fmt;

/// A half-open byte range into the source text.
///
/// Spans are attached to every token and AST node so that errors can point
/// at the offending source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// Returns the smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Computes the 1-based (line, column) of this span's start in `src`.
    pub fn line_col(&self, src: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, ch) in src.char_indices() {
            if i >= self.start {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    // Literals and identifiers.
    /// An integer literal, e.g. `42`.
    Int(i64),
    /// An identifier, e.g. `foo`.
    Ident(String),

    // Keywords.
    /// `fn`
    Fn,
    /// `let`
    Let,
    /// `global`
    Global,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `int` (the scalar type)
    KwInt,
    /// `print` (builtin output statement)
    Print,

    // Punctuation.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `->`
    Arrow,

    // Operators.
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `&`
    Amp,

    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Fn => write!(f, "`fn`"),
            TokenKind::Let => write!(f, "`let`"),
            TokenKind::Global => write!(f, "`global`"),
            TokenKind::If => write!(f, "`if`"),
            TokenKind::Else => write!(f, "`else`"),
            TokenKind::While => write!(f, "`while`"),
            TokenKind::For => write!(f, "`for`"),
            TokenKind::Return => write!(f, "`return`"),
            TokenKind::Break => write!(f, "`break`"),
            TokenKind::Continue => write!(f, "`continue`"),
            TokenKind::KwInt => write!(f, "`int`"),
            TokenKind::Print => write!(f, "`print`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Arrow => write!(f, "`->`"),
            TokenKind::Assign => write!(f, "`=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Percent => write!(f, "`%`"),
            TokenKind::EqEq => write!(f, "`==`"),
            TokenKind::NotEq => write!(f, "`!=`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::AndAnd => write!(f, "`&&`"),
            TokenKind::OrOr => write!(f, "`||`"),
            TokenKind::Bang => write!(f, "`!`"),
            TokenKind::Amp => write!(f, "`&`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token together with the source span it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where in the source it appears.
    pub span: Span,
}

impl Token {
    /// Creates a token of `kind` at `span`.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn span_line_col() {
        let src = "ab\ncd\nef";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(3, 4).line_col(src), (2, 1));
        assert_eq!(Span::new(7, 8).line_col(src), (3, 2));
    }

    #[test]
    fn token_kind_display_is_nonempty() {
        for kind in [
            TokenKind::Int(1),
            TokenKind::Ident("x".into()),
            TokenKind::Fn,
            TokenKind::Arrow,
            TokenKind::Eof,
        ] {
            assert!(!kind.to_string().is_empty());
        }
    }
}
