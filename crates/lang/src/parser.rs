//! Recursive-descent parser for Mini.
//!
//! Operator precedence (loosest to tightest): `||`, `&&`, comparisons
//! (non-associative), `+ -`, `* / %`, unary `- ! * &`, postfix indexing.

use crate::ast::*;
use crate::error::{LangError, LangResult};
use crate::lexer::lex;
use crate::token::{Span, Token, TokenKind};

/// Parses a full Mini program from source text.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse(src: &str) -> LangResult<Program> {
    let tokens = lex(src)?;
    Parser::new(tokens).program()
}

/// Parses a single expression (useful for tests and tools).
///
/// # Errors
///
/// Returns an error if the input is not exactly one expression.
pub fn parse_expr(src: &str) -> LangResult<Expr> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let e = p.expr()?;
    p.expect(TokenKind::Eof)?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_expr_id: u32,
    /// Current nesting depth across recursive productions (expressions,
    /// types, statements); bounded by [`crate::MAX_NEST_DEPTH`] so deeply
    /// nested input yields a parse error instead of a stack overflow.
    depth: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            next_expr_id: 0,
            depth: 0,
        }
    }

    /// Enters one level of recursive nesting, erroring out past the limit.
    fn descend(&mut self) -> LangResult<()> {
        self.depth += 1;
        if self.depth > crate::MAX_NEST_DEPTH {
            return Err(LangError::parse(
                format!(
                    "nesting exceeds the maximum depth of {}",
                    crate::MAX_NEST_DEPTH
                ),
                self.peek().span,
            ));
        }
        Ok(())
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> LangResult<Token> {
        if self.at(&kind) {
            Ok(self.bump())
        } else {
            Err(LangError::parse(
                format!("expected {kind}, found {}", self.peek_kind()),
                self.peek().span,
            ))
        }
    }

    fn expect_ident(&mut self) -> LangResult<(String, Span)> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                let t = self.bump();
                Ok((name, t.span))
            }
            other => Err(LangError::parse(
                format!("expected identifier, found {other}"),
                self.peek().span,
            )),
        }
    }

    fn mk_expr(&mut self, kind: ExprKind, span: Span) -> Expr {
        let id = ExprId(self.next_expr_id);
        self.next_expr_id += 1;
        Expr { id, kind, span }
    }

    // ---- top level ----

    fn program(&mut self) -> LangResult<Program> {
        let mut program = Program::default();
        loop {
            match self.peek_kind() {
                TokenKind::Eof => return Ok(program),
                TokenKind::Global => program.globals.push(self.global_decl()?),
                TokenKind::Fn => program.funcs.push(self.func_decl()?),
                other => {
                    return Err(LangError::parse(
                        format!("expected `global` or `fn` at top level, found {other}"),
                        self.peek().span,
                    ));
                }
            }
        }
    }

    fn global_decl(&mut self) -> LangResult<GlobalDecl> {
        let start = self.expect(TokenKind::Global)?.span;
        let (name, _) = self.expect_ident()?;
        self.expect(TokenKind::Colon)?;
        let ty = self.type_expr()?;
        let init = if self.eat(&TokenKind::Assign) {
            let t = self.peek().clone();
            match t.kind {
                TokenKind::Int(v) => {
                    self.bump();
                    Some(v)
                }
                TokenKind::Minus => {
                    self.bump();
                    match self.peek_kind().clone() {
                        TokenKind::Int(v) => {
                            self.bump();
                            Some(-v)
                        }
                        other => {
                            return Err(LangError::parse(
                                format!("expected integer literal after `-`, found {other}"),
                                self.peek().span,
                            ));
                        }
                    }
                }
                other => {
                    return Err(LangError::parse(
                        format!("global initializers must be integer literals, found {other}"),
                        t.span,
                    ));
                }
            }
        } else {
            None
        };
        let end = self.expect(TokenKind::Semi)?.span;
        Ok(GlobalDecl {
            name,
            ty,
            init,
            span: start.merge(end),
        })
    }

    fn func_decl(&mut self) -> LangResult<FuncDecl> {
        let start = self.expect(TokenKind::Fn)?.span;
        let (name, _) = self.expect_ident()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                let (pname, pspan) = self.expect_ident()?;
                self.expect(TokenKind::Colon)?;
                let ty = self.type_expr()?;
                params.push(Param {
                    name: pname,
                    ty,
                    span: pspan,
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let close = self.expect(TokenKind::RParen)?.span;
        let returns_value = if self.eat(&TokenKind::Arrow) {
            self.expect(TokenKind::KwInt)?;
            true
        } else {
            false
        };
        let body = self.block()?;
        Ok(FuncDecl {
            name,
            params,
            returns_value,
            body,
            span: start.merge(close),
        })
    }

    fn type_expr(&mut self) -> LangResult<TypeExpr> {
        self.descend()?;
        let r = self.type_expr_inner();
        self.depth -= 1;
        r
    }

    fn type_expr_inner(&mut self) -> LangResult<TypeExpr> {
        match self.peek_kind().clone() {
            TokenKind::KwInt => {
                self.bump();
                Ok(TypeExpr::Int)
            }
            TokenKind::Star => {
                self.bump();
                self.expect(TokenKind::KwInt)?;
                Ok(TypeExpr::Ptr)
            }
            TokenKind::LBracket => {
                self.bump();
                let elem = self.type_expr()?;
                self.expect(TokenKind::Semi)?;
                let t = self.peek().clone();
                let len = match t.kind {
                    TokenKind::Int(v) if v > 0 => {
                        self.bump();
                        v as usize
                    }
                    TokenKind::Int(_) => {
                        return Err(LangError::parse("array length must be positive", t.span));
                    }
                    other => {
                        return Err(LangError::parse(
                            format!("expected array length, found {other}"),
                            t.span,
                        ));
                    }
                };
                self.expect(TokenKind::RBracket)?;
                Ok(TypeExpr::Array(Box::new(elem), len))
            }
            other => Err(LangError::parse(
                format!("expected a type, found {other}"),
                self.peek().span,
            )),
        }
    }

    // ---- statements ----

    fn block(&mut self) -> LangResult<Block> {
        let start = self.expect(TokenKind::LBrace)?.span;
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::RBrace) {
            if self.at(&TokenKind::Eof) {
                return Err(LangError::parse("unterminated block", self.peek().span));
            }
            stmts.push(self.stmt()?);
        }
        let end = self.expect(TokenKind::RBrace)?.span;
        Ok(Block {
            stmts,
            span: start.merge(end),
        })
    }

    fn stmt(&mut self) -> LangResult<Stmt> {
        self.descend()?;
        let r = self.stmt_inner();
        self.depth -= 1;
        r
    }

    fn stmt_inner(&mut self) -> LangResult<Stmt> {
        match self.peek_kind() {
            TokenKind::Let => self.let_stmt(),
            TokenKind::If => self.if_stmt(),
            TokenKind::While => self.while_stmt(),
            TokenKind::For => self.for_stmt(),
            TokenKind::Return => {
                let start = self.bump().span;
                let value = if self.at(&TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt {
                    kind: StmtKind::Return(value),
                    span: start.merge(end),
                })
            }
            TokenKind::Break => {
                let start = self.bump().span;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt {
                    kind: StmtKind::Break,
                    span: start.merge(end),
                })
            }
            TokenKind::Continue => {
                let start = self.bump().span;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt {
                    kind: StmtKind::Continue,
                    span: start.merge(end),
                })
            }
            TokenKind::Print => {
                let start = self.bump().span;
                self.expect(TokenKind::LParen)?;
                let value = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt {
                    kind: StmtKind::Print(value),
                    span: start.merge(end),
                })
            }
            _ => {
                let stmt = self.simple_stmt()?;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(Stmt {
                    span: stmt.span.merge(end),
                    ..stmt
                })
            }
        }
    }

    /// Parses an assignment or expression statement, without the trailing
    /// semicolon (shared by statement position and `for` headers).
    fn simple_stmt(&mut self) -> LangResult<Stmt> {
        let target = self.expr()?;
        if self.eat(&TokenKind::Assign) {
            let value = self.expr()?;
            if !target.is_lvalue() {
                return Err(LangError::parse(
                    "left-hand side of assignment is not assignable",
                    target.span,
                ));
            }
            let span = target.span.merge(value.span);
            Ok(Stmt {
                kind: StmtKind::Assign { target, value },
                span,
            })
        } else {
            let span = target.span;
            Ok(Stmt {
                kind: StmtKind::Expr(target),
                span,
            })
        }
    }

    fn let_stmt(&mut self) -> LangResult<Stmt> {
        let start = self.expect(TokenKind::Let)?.span;
        let (name, _) = self.expect_ident()?;
        self.expect(TokenKind::Colon)?;
        let ty = self.type_expr()?;
        let init = if self.eat(&TokenKind::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        let end = self.expect(TokenKind::Semi)?.span;
        Ok(Stmt {
            kind: StmtKind::Let { name, ty, init },
            span: start.merge(end),
        })
    }

    fn if_stmt(&mut self) -> LangResult<Stmt> {
        // `else if` chains recurse here without passing through `stmt`,
        // so the depth guard must sit on this production as well.
        self.descend()?;
        let r = self.if_stmt_inner();
        self.depth -= 1;
        r
    }

    fn if_stmt_inner(&mut self) -> LangResult<Stmt> {
        let start = self.expect(TokenKind::If)?.span;
        let cond = self.expr()?;
        let then_blk = self.block()?;
        let mut span = start.merge(then_blk.span);
        let else_blk = if self.eat(&TokenKind::Else) {
            if self.at(&TokenKind::If) {
                // `else if`: wrap the nested if in a synthetic block.
                let nested = self.if_stmt()?;
                let blk = Block {
                    span: nested.span,
                    stmts: vec![nested],
                };
                span = span.merge(blk.span);
                Some(blk)
            } else {
                let blk = self.block()?;
                span = span.merge(blk.span);
                Some(blk)
            }
        } else {
            None
        };
        Ok(Stmt {
            kind: StmtKind::If {
                cond,
                then_blk,
                else_blk,
            },
            span,
        })
    }

    fn while_stmt(&mut self) -> LangResult<Stmt> {
        let start = self.expect(TokenKind::While)?.span;
        let cond = self.expr()?;
        let body = self.block()?;
        let span = start.merge(body.span);
        Ok(Stmt {
            kind: StmtKind::While { cond, body },
            span,
        })
    }

    fn for_stmt(&mut self) -> LangResult<Stmt> {
        let start = self.expect(TokenKind::For)?.span;
        let init = if self.at(&TokenKind::Semi) {
            None
        } else {
            Some(Box::new(self.simple_stmt()?))
        };
        self.expect(TokenKind::Semi)?;
        let cond = if self.at(&TokenKind::Semi) {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(TokenKind::Semi)?;
        let step = if self.at(&TokenKind::LBrace) {
            None
        } else {
            Some(Box::new(self.simple_stmt()?))
        };
        let body = self.block()?;
        let span = start.merge(body.span);
        Ok(Stmt {
            kind: StmtKind::For {
                init,
                cond,
                step,
                body,
            },
            span,
        })
    }

    // ---- expressions ----

    fn expr(&mut self) -> LangResult<Expr> {
        self.descend()?;
        let r = self.or_expr();
        self.depth -= 1;
        r
    }

    fn or_expr(&mut self) -> LangResult<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.and_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = self.mk_expr(
                ExprKind::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs)),
                span,
            );
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> LangResult<Expr> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.cmp_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = self.mk_expr(
                ExprKind::Binary(BinOp::And, Box::new(lhs), Box::new(rhs)),
                span,
            );
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> LangResult<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek_kind() {
            TokenKind::EqEq => BinOp::Eq,
            TokenKind::NotEq => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        let span = lhs.span.merge(rhs.span);
        Ok(self.mk_expr(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span))
    }

    fn add_expr(&mut self) -> LangResult<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = self.mk_expr(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
    }

    fn mul_expr(&mut self) -> LangResult<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = self.mk_expr(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
    }

    fn unary_expr(&mut self) -> LangResult<Expr> {
        self.descend()?;
        let r = self.unary_expr_inner();
        self.depth -= 1;
        r
    }

    fn unary_expr_inner(&mut self) -> LangResult<Expr> {
        let start = self.peek().span;
        match self.peek_kind() {
            TokenKind::Minus => {
                self.bump();
                let operand = self.unary_expr()?;
                let span = start.merge(operand.span);
                Ok(self.mk_expr(ExprKind::Unary(UnOp::Neg, Box::new(operand)), span))
            }
            TokenKind::Bang => {
                self.bump();
                let operand = self.unary_expr()?;
                let span = start.merge(operand.span);
                Ok(self.mk_expr(ExprKind::Unary(UnOp::Not, Box::new(operand)), span))
            }
            TokenKind::Star => {
                self.bump();
                let operand = self.unary_expr()?;
                let span = start.merge(operand.span);
                Ok(self.mk_expr(ExprKind::Deref(Box::new(operand)), span))
            }
            TokenKind::Amp => {
                self.bump();
                let operand = self.unary_expr()?;
                if !operand.is_lvalue() {
                    return Err(LangError::parse(
                        "`&` requires an addressable expression",
                        operand.span,
                    ));
                }
                let span = start.merge(operand.span);
                Ok(self.mk_expr(ExprKind::AddrOf(Box::new(operand)), span))
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> LangResult<Expr> {
        let mut e = self.primary_expr()?;
        while self.at(&TokenKind::LBracket) {
            self.bump();
            let index = self.expr()?;
            let end = self.expect(TokenKind::RBracket)?.span;
            let span = e.span.merge(end);
            e = self.mk_expr(ExprKind::Index(Box::new(e), Box::new(index)), span);
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> LangResult<Expr> {
        let t = self.peek().clone();
        match t.kind {
            TokenKind::Int(v) => {
                self.bump();
                Ok(self.mk_expr(ExprKind::IntLit(v), t.span))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.at(&TokenKind::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    let end = self.expect(TokenKind::RParen)?.span;
                    let span = t.span.merge(end);
                    Ok(self.mk_expr(ExprKind::Call(name, args), span))
                } else {
                    Ok(self.mk_expr(ExprKind::Var(name), t.span))
                }
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(inner)
            }
            other => Err(LangError::parse(
                format!("expected an expression, found {other}"),
                t.span,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_program() {
        let p = parse("fn main() { }").unwrap();
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[0].name, "main");
        assert!(p.funcs[0].params.is_empty());
        assert!(!p.funcs[0].returns_value);
    }

    #[test]
    fn parses_globals() {
        let p = parse("global x: int = 3; global neg: int = -7; global a: [int; 10];").unwrap();
        assert_eq!(p.globals.len(), 3);
        assert_eq!(p.globals[0].init, Some(3));
        assert_eq!(p.globals[1].init, Some(-7));
        assert_eq!(
            p.globals[2].ty,
            TypeExpr::Array(Box::new(TypeExpr::Int), 10)
        );
    }

    #[test]
    fn parses_multidim_global() {
        let p = parse("global m: [[int; 512]; 13];").unwrap();
        assert_eq!(p.globals[0].ty.size_in_words(), 13 * 512);
    }

    #[test]
    fn parses_function_signature() {
        let p = parse("fn f(x: int, p: *int) -> int { return x; }").unwrap();
        let f = &p.funcs[0];
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].ty, TypeExpr::Int);
        assert_eq!(f.params[1].ty, TypeExpr::Ptr);
        assert!(f.returns_value);
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e.kind {
            ExprKind::Binary(BinOp::Add, lhs, rhs) => {
                assert!(matches!(lhs.kind, ExprKind::IntLit(1)));
                assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn precedence_cmp_over_and_over_or() {
        let e = parse_expr("a < b && c || d").unwrap();
        match e.kind {
            ExprKind::Binary(BinOp::Or, lhs, _) => {
                assert!(matches!(lhs.kind, ExprKind::Binary(BinOp::And, _, _)));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn comparisons_are_non_associative() {
        // `a < b < c` must not parse as a chain.
        assert!(parse_expr("a < b < c").is_err());
    }

    #[test]
    fn parses_unary_chain() {
        let e = parse_expr("-!x").unwrap();
        match e.kind {
            ExprKind::Unary(UnOp::Neg, inner) => {
                assert!(matches!(inner.kind, ExprKind::Unary(UnOp::Not, _)));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn parses_deref_and_addrof() {
        let e = parse_expr("*p + 1").unwrap();
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::Add, _, _)));
        let e = parse_expr("&a[i]").unwrap();
        assert!(matches!(e.kind, ExprKind::AddrOf(_)));
    }

    #[test]
    fn rejects_addrof_rvalue() {
        assert!(parse_expr("&(1 + 2)").is_err());
        assert!(parse_expr("&f()").is_err());
    }

    #[test]
    fn parses_nested_indexing() {
        let e = parse_expr("m[i][j]").unwrap();
        match e.kind {
            ExprKind::Index(base, _) => {
                assert!(matches!(base.kind, ExprKind::Index(_, _)));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn parses_if_else_chain() {
        let p = parse("fn main() { if a { } else if b { } else { } }").unwrap();
        let StmtKind::If { else_blk, .. } = &p.funcs[0].body.stmts[0].kind else {
            panic!("expected if");
        };
        let inner = else_blk.as_ref().unwrap();
        assert!(matches!(inner.stmts[0].kind, StmtKind::If { .. }));
    }

    #[test]
    fn parses_while_and_for() {
        let p = parse(
            "fn main() { let i: int = 0; while i < 10 { i = i + 1; } \
             for i = 0; i < 5; i = i + 1 { print(i); } }",
        )
        .unwrap();
        assert_eq!(p.funcs[0].body.stmts.len(), 3);
    }

    #[test]
    fn parses_for_with_empty_parts() {
        let p = parse("fn main() { for ; ; { break; } }").unwrap();
        let StmtKind::For {
            init, cond, step, ..
        } = &p.funcs[0].body.stmts[0].kind
        else {
            panic!("expected for");
        };
        assert!(init.is_none() && cond.is_none() && step.is_none());
    }

    #[test]
    fn rejects_assignment_to_rvalue() {
        assert!(parse("fn main() { 1 = 2; }").is_err());
        assert!(parse("fn main() { f() = 2; }").is_err());
    }

    #[test]
    fn assignment_through_pointer_ok() {
        let p = parse("fn main() { *p = 2; a[i] = 3; m[i][j] = 4; }").unwrap();
        assert_eq!(p.funcs[0].body.stmts.len(), 3);
    }

    #[test]
    fn rejects_unterminated_block() {
        assert!(parse("fn main() { let x: int = 1;").is_err());
    }

    #[test]
    fn rejects_garbage_at_top_level() {
        assert!(parse("let x: int = 1;").is_err());
    }

    #[test]
    fn expr_ids_are_unique() {
        let p = parse("fn main() { let x: int = 1 + 2 * 3; print(x + x); }").unwrap();
        let mut ids = Vec::new();
        fn collect(e: &Expr, ids: &mut Vec<ExprId>) {
            ids.push(e.id);
            match &e.kind {
                ExprKind::Unary(_, a) | ExprKind::Deref(a) | ExprKind::AddrOf(a) => collect(a, ids),
                ExprKind::Binary(_, a, b) | ExprKind::Index(a, b) => {
                    collect(a, ids);
                    collect(b, ids);
                }
                ExprKind::Call(_, args) => args.iter().for_each(|a| collect(a, ids)),
                ExprKind::IntLit(_) | ExprKind::Var(_) => {}
            }
        }
        for f in &p.funcs {
            for s in &f.body.stmts {
                if let StmtKind::Let { init: Some(e), .. } = &s.kind {
                    collect(e, &mut ids);
                }
                if let StmtKind::Print(e) = &s.kind {
                    collect(e, &mut ids);
                }
            }
        }
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n, "expression ids must be unique");
    }

    #[test]
    fn parenthesized_expression_reassociates() {
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::Mul, _, _)));
    }
}
