//! # ucm-lang — front end for the Mini language
//!
//! Mini is a small C-like language used as the source language for the
//! reproduction of *Chi & Dietz, "Unified Management of Registers and Cache
//! Using Liveness and Cache Bypass" (PLDI 1989)*. It was designed so the
//! paper's alias classification has realistic work to do: scalars, N-d `int`
//! arrays, `*int` pointers with arithmetic, address-of, and recursion.
//!
//! The crate provides a lexer ([`lexer::lex`]), a parser ([`parser::parse`]),
//! and a semantic checker ([`check::check`]) whose output,
//! [`check::CheckedProgram`], carries the type/resolution side tables that
//! `ucm-ir` lowers from.
//!
//! ## Example
//!
//! ```rust
//! # fn main() -> Result<(), ucm_lang::LangError> {
//! let program = ucm_lang::parse_and_check(
//!     "global a: [int; 8];
//!      fn main() {
//!          let i: int = 0;
//!          while i < 8 { a[i] = i * i; i = i + 1; }
//!          print(a[7]);
//!      }",
//! )?;
//! assert_eq!(program.ast.funcs[0].name, "main");
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod check;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod token;
pub mod types;

pub use ast::Program;
pub use check::{check, parse_and_check, CheckInfo, CheckedProgram, VarTarget};
pub use error::{LangError, LangResult};
pub use parser::parse;
pub use types::Type;
