//! # ucm-lang — front end for the Mini language
//!
//! Mini is a small C-like language used as the source language for the
//! reproduction of *Chi & Dietz, "Unified Management of Registers and Cache
//! Using Liveness and Cache Bypass" (PLDI 1989)*. It was designed so the
//! paper's alias classification has realistic work to do: scalars, N-d `int`
//! arrays, `*int` pointers with arithmetic, address-of, and recursion.
//!
//! The crate provides a lexer ([`lexer::lex`]), a parser ([`parser::parse`]),
//! and a semantic checker ([`check::check`]) whose output,
//! [`check::CheckedProgram`], carries the type/resolution side tables that
//! `ucm-ir` lowers from.
//!
//! ## Example
//!
//! ```rust
//! # fn main() -> Result<(), ucm_lang::LangError> {
//! let program = ucm_lang::parse_and_check(
//!     "global a: [int; 8];
//!      fn main() {
//!          let i: int = 0;
//!          while i < 8 { a[i] = i * i; i = i + 1; }
//!          print(a[7]);
//!      }",
//! )?;
//! assert_eq!(program.ast.funcs[0].name, "main");
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod check;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod token;
pub mod types;

/// Maximum syntactic nesting depth (expressions, types, statements) the
/// parser and checker accept before returning a typed error.
///
/// Both phases recurse on nested structure, so without a limit a
/// pathological input like 100 000 nested parentheses overflows the stack
/// and aborts the process. The limit is far above anything a real program
/// needs (the deepest example kernel nests under 15 levels) while keeping
/// worst-case recursion bounded at a few thousand stack frames.
pub const MAX_NEST_DEPTH: usize = 128;

pub use ast::Program;
pub use check::{check, parse_and_check, CheckInfo, CheckedProgram, VarTarget};
pub use error::{LangError, LangResult};
pub use parser::parse;
pub use pretty::{print_expr, print_program};
pub use types::Type;
