//! Semantic types for Mini.

use crate::ast::TypeExpr;
use std::fmt;

/// A fully resolved Mini type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit signed integer, the only scalar value type.
    Int,
    /// Pointer to `int` (one machine word).
    Ptr,
    /// Fixed-length array. Element is `int` or a nested array.
    Array(Box<Type>, usize),
}

impl Type {
    /// Number of machine words a value of this type occupies in memory.
    pub fn size_in_words(&self) -> usize {
        match self {
            Type::Int | Type::Ptr => 1,
            Type::Array(elem, n) => elem.size_in_words() * n,
        }
    }

    /// Returns `true` for word-sized types that fit in a register.
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Int | Type::Ptr)
    }

    /// The type of `self[i]`, if indexable.
    ///
    /// Arrays index to their element type; pointers index to `int`.
    pub fn index_elem(&self) -> Option<Type> {
        match self {
            Type::Array(elem, _) => Some((**elem).clone()),
            Type::Ptr => Some(Type::Int),
            Type::Int => None,
        }
    }

    /// Applies C-style array-to-pointer decay for value contexts.
    ///
    /// Only one-dimensional `int` arrays decay (to `*int`); other types are
    /// returned unchanged.
    pub fn decayed(&self) -> Type {
        match self {
            Type::Array(elem, _) if **elem == Type::Int => Type::Ptr,
            other => other.clone(),
        }
    }

    /// Whether a value of type `self` can be passed where `param` is expected,
    /// applying decay.
    pub fn coerces_to(&self, param: &Type) -> bool {
        self == param || &self.decayed() == param
    }
}

impl From<&TypeExpr> for Type {
    fn from(te: &TypeExpr) -> Self {
        match te {
            TypeExpr::Int => Type::Int,
            TypeExpr::Ptr => Type::Ptr,
            TypeExpr::Array(elem, n) => Type::Array(Box::new(Type::from(&**elem)), *n),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Ptr => write!(f, "*int"),
            Type::Array(elem, n) => write!(f, "[{elem}; {n}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(Type::Int.size_in_words(), 1);
        assert_eq!(Type::Ptr.size_in_words(), 1);
        let m = Type::Array(Box::new(Type::Array(Box::new(Type::Int), 512)), 13);
        assert_eq!(m.size_in_words(), 6656);
    }

    #[test]
    fn indexing() {
        let a = Type::Array(Box::new(Type::Int), 8);
        assert_eq!(a.index_elem(), Some(Type::Int));
        assert_eq!(Type::Ptr.index_elem(), Some(Type::Int));
        assert_eq!(Type::Int.index_elem(), None);
        let m = Type::Array(Box::new(a.clone()), 2);
        assert_eq!(m.index_elem(), Some(a));
    }

    #[test]
    fn decay_rules() {
        let a = Type::Array(Box::new(Type::Int), 8);
        assert_eq!(a.decayed(), Type::Ptr);
        let m = Type::Array(Box::new(a.clone()), 2);
        assert_eq!(m.decayed(), m); // multi-dim arrays do not decay
        assert!(a.coerces_to(&Type::Ptr));
        assert!(!m.coerces_to(&Type::Ptr));
        assert!(Type::Int.coerces_to(&Type::Int));
        assert!(!Type::Int.coerces_to(&Type::Ptr));
    }

    #[test]
    fn from_type_expr() {
        let te = TypeExpr::Array(Box::new(TypeExpr::Ptr), 4);
        assert_eq!(Type::from(&te), Type::Array(Box::new(Type::Ptr), 4));
    }
}
