//! Abstract syntax tree for the Mini language.
//!
//! Mini is a small C-like language designed so that the alias analysis of the
//! unified register/cache model has realistic work to do: it has scalar `int`
//! variables, N-dimensional `int` arrays, `*int` pointers, address-of, pointer
//! arithmetic, and recursive functions.

use crate::token::Span;
use std::fmt;

/// Unique id for every expression node, assigned by the parser.
///
/// Side tables produced by the semantic checker (types, variable resolutions)
/// are keyed by `ExprId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(pub u32);

impl fmt::Display for ExprId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A syntactic type annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeExpr {
    /// `int`
    Int,
    /// `*int`
    Ptr,
    /// `[T; N]`
    Array(Box<TypeExpr>, usize),
}

/// A whole compilation unit: globals followed by functions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Global variable declarations, in source order.
    pub globals: Vec<GlobalDecl>,
    /// Function definitions, in source order.
    pub funcs: Vec<FuncDecl>,
}

/// `global name: type;` or `global name: int = LITERAL;`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalDecl {
    /// Variable name.
    pub name: String,
    /// Declared type (scalar or array; globals cannot be pointers in Mini).
    pub ty: TypeExpr,
    /// Optional scalar initializer (arrays are zero-initialized).
    pub init: Option<i64>,
    /// Source location.
    pub span: Span,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncDecl {
    /// Function name.
    pub name: String,
    /// Formal parameters.
    pub params: Vec<Param>,
    /// `Some` if declared `-> int`, `None` for a procedure.
    pub returns_value: bool,
    /// Function body.
    pub body: Block,
    /// Source location of the signature.
    pub span: Span,
}

/// A formal parameter; Mini parameters are `int` or `*int`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: TypeExpr,
    /// Source location.
    pub span: Span,
}

/// `{ stmt* }`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Source location including braces.
    pub span: Span,
}

/// A statement with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// The statement itself.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtKind {
    /// `let name: type = init;` — local declaration. Local arrays are
    /// allocated in the stack frame; `init` must be absent for arrays.
    Let {
        /// Local variable name.
        name: String,
        /// Declared type.
        ty: TypeExpr,
        /// Optional initializer (scalars and pointers only).
        init: Option<Expr>,
    },
    /// `lvalue = expr;`
    Assign {
        /// Assignment target; must be an lvalue.
        target: Expr,
        /// Value to store.
        value: Expr,
    },
    /// `if cond { .. } else { .. }`
    If {
        /// Condition (an `int`; nonzero is true).
        cond: Expr,
        /// Taken when `cond != 0`.
        then_blk: Block,
        /// Taken when `cond == 0`, if present.
        else_blk: Option<Block>,
    },
    /// `while cond { .. }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `for init; cond; step { .. }` — `init` and `step` are assignments.
    For {
        /// Loop initializer, run once.
        init: Option<Box<Stmt>>,
        /// Loop condition; absent means "forever".
        cond: Option<Expr>,
        /// Step statement, run after each iteration.
        step: Option<Box<Stmt>>,
        /// Loop body.
        body: Block,
    },
    /// `return;` or `return expr;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `print(expr);` — emits one integer to the program's output stream.
    Print(Expr),
    /// An expression evaluated for its side effects (a call).
    Expr(Expr),
}

/// An expression with id and source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expr {
    /// Unique node id (keys into checker side tables).
    pub id: ExprId,
    /// The expression itself.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Variable reference (global, parameter, or local).
    Var(String),
    /// Unary operator application.
    Unary(UnOp, Box<Expr>),
    /// Binary operator application. `&&`/`||` short-circuit.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
    /// `base[index]` — array or pointer indexing.
    Index(Box<Expr>, Box<Expr>),
    /// `*ptr`
    Deref(Box<Expr>),
    /// `&lvalue`
    AddrOf(Box<Expr>),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Logical not `!e` (yields 0 or 1).
    Not,
}

/// Binary operators. Comparisons yield `int` 0 or 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+` (also pointer + int)
    Add,
    /// `-` (also pointer - int)
    Sub,
    /// `*`
    Mul,
    /// `/` (truncating; traps on divide by zero)
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Neg => write!(f, "-"),
            UnOp::Not => write!(f, "!"),
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        };
        write!(f, "{s}")
    }
}

impl Expr {
    /// Returns `true` if this expression is a syntactic lvalue
    /// (assignable / addressable).
    pub fn is_lvalue(&self) -> bool {
        match &self.kind {
            ExprKind::Var(_) | ExprKind::Deref(_) => true,
            ExprKind::Index(base, _) => base.is_lvalue(),
            _ => false,
        }
    }
}

impl TypeExpr {
    /// Number of machine words a value of this type occupies.
    pub fn size_in_words(&self) -> usize {
        match self {
            TypeExpr::Int | TypeExpr::Ptr => 1,
            TypeExpr::Array(elem, n) => elem.size_in_words() * n,
        }
    }
}

impl fmt::Display for TypeExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeExpr::Int => write!(f, "int"),
            TypeExpr::Ptr => write!(f, "*int"),
            TypeExpr::Array(elem, n) => write!(f, "[{elem}; {n}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(kind: ExprKind) -> Expr {
        Expr {
            id: ExprId(0),
            kind,
            span: Span::default(),
        }
    }

    #[test]
    fn lvalue_classification() {
        let var = expr(ExprKind::Var("x".into()));
        assert!(var.is_lvalue());
        let lit = expr(ExprKind::IntLit(3));
        assert!(!lit.is_lvalue());
        let deref = expr(ExprKind::Deref(Box::new(var.clone())));
        assert!(deref.is_lvalue());
        let idx = expr(ExprKind::Index(Box::new(var), Box::new(lit.clone())));
        assert!(idx.is_lvalue());
        let call_idx = expr(ExprKind::Index(
            Box::new(expr(ExprKind::Call("f".into(), vec![]))),
            Box::new(lit),
        ));
        assert!(!call_idx.is_lvalue());
    }

    #[test]
    fn type_sizes() {
        assert_eq!(TypeExpr::Int.size_in_words(), 1);
        assert_eq!(TypeExpr::Ptr.size_in_words(), 1);
        let row = TypeExpr::Array(Box::new(TypeExpr::Int), 512);
        assert_eq!(row.size_in_words(), 512);
        let matrix = TypeExpr::Array(Box::new(row), 13);
        assert_eq!(matrix.size_in_words(), 13 * 512);
    }

    #[test]
    fn type_display() {
        let matrix = TypeExpr::Array(Box::new(TypeExpr::Array(Box::new(TypeExpr::Int), 4)), 2);
        assert_eq!(matrix.to_string(), "[[int; 4]; 2]");
    }
}
