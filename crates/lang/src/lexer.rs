//! Hand-written lexer for the Mini language.
//!
//! Mini supports `//` line comments and `/* ... */` block comments (which do
//! not nest), decimal integer literals, and the keywords/operators defined in
//! [`crate::token::TokenKind`].

use crate::error::{LangError, LangResult};
use crate::token::{Span, Token, TokenKind};

/// Tokenizes `src` into a vector of tokens ending with [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns a [`LangError`] on unexpected characters, unterminated block
/// comments, or integer literals that overflow `i64`.
pub fn lex(src: &str) -> LangResult<Vec<Token>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn run(mut self) -> LangResult<Vec<Token>> {
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let Some(b) = self.peek() else {
                self.tokens
                    .push(Token::new(TokenKind::Eof, Span::new(start, start)));
                return Ok(self.tokens);
            };
            let kind = match b {
                b'0'..=b'9' => self.lex_int(start)?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_ident(start),
                b'(' => self.single(TokenKind::LParen),
                b')' => self.single(TokenKind::RParen),
                b'{' => self.single(TokenKind::LBrace),
                b'}' => self.single(TokenKind::RBrace),
                b'[' => self.single(TokenKind::LBracket),
                b']' => self.single(TokenKind::RBracket),
                b',' => self.single(TokenKind::Comma),
                b';' => self.single(TokenKind::Semi),
                b':' => self.single(TokenKind::Colon),
                b'+' => self.single(TokenKind::Plus),
                b'*' => self.single(TokenKind::Star),
                b'/' => self.single(TokenKind::Slash),
                b'%' => self.single(TokenKind::Percent),
                b'-' => {
                    self.bump();
                    if self.peek() == Some(b'>') {
                        self.bump();
                        TokenKind::Arrow
                    } else {
                        TokenKind::Minus
                    }
                }
                b'=' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        TokenKind::EqEq
                    } else {
                        TokenKind::Assign
                    }
                }
                b'!' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        TokenKind::NotEq
                    } else {
                        TokenKind::Bang
                    }
                }
                b'<' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        TokenKind::Le
                    } else {
                        TokenKind::Lt
                    }
                }
                b'>' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        TokenKind::Ge
                    } else {
                        TokenKind::Gt
                    }
                }
                b'&' => {
                    self.bump();
                    if self.peek() == Some(b'&') {
                        self.bump();
                        TokenKind::AndAnd
                    } else {
                        TokenKind::Amp
                    }
                }
                b'|' => {
                    self.bump();
                    if self.peek() == Some(b'|') {
                        self.bump();
                        TokenKind::OrOr
                    } else {
                        return Err(LangError::lex(
                            "unexpected character `|` (Mini has no bitwise or)",
                            Span::new(start, self.pos),
                        ));
                    }
                }
                other => {
                    return Err(LangError::lex(
                        format!("unexpected character `{}`", other as char),
                        Span::new(start, start + 1),
                    ));
                }
            };
            self.tokens
                .push(Token::new(kind, Span::new(start, self.pos)));
        }
    }

    /// Skips whitespace and comments.
    fn skip_trivia(&mut self) -> LangResult<()> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.bump();
                    self.bump();
                    let mut closed = false;
                    while let Some(b) = self.bump() {
                        if b == b'*' && self.peek() == Some(b'/') {
                            self.bump();
                            closed = true;
                            break;
                        }
                    }
                    if !closed {
                        return Err(LangError::lex(
                            "unterminated block comment",
                            Span::new(start, self.pos),
                        ));
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn single(&mut self, kind: TokenKind) -> TokenKind {
        self.bump();
        kind
    }

    fn lex_int(&mut self, start: usize) -> LangResult<TokenKind> {
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() {
                self.bump();
            } else {
                break;
            }
        }
        let text = &self.src[start..self.pos];
        text.parse::<i64>().map(TokenKind::Int).map_err(|_| {
            LangError::lex(
                format!("integer literal `{text}` overflows i64"),
                Span::new(start, self.pos),
            )
        })
    }

    fn lex_ident(&mut self, start: usize) -> TokenKind {
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        match &self.src[start..self.pos] {
            "fn" => TokenKind::Fn,
            "let" => TokenKind::Let,
            "global" => TokenKind::Global,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "while" => TokenKind::While,
            "for" => TokenKind::For,
            "return" => TokenKind::Return,
            "break" => TokenKind::Break,
            "continue" => TokenKind::Continue,
            "int" => TokenKind::KwInt,
            "print" => TokenKind::Print,
            other => TokenKind::Ident(other.to_owned()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_empty_input_to_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
        assert_eq!(kinds("   \n\t "), vec![TokenKind::Eof]);
    }

    #[test]
    fn lexes_keywords_and_identifiers() {
        assert_eq!(
            kinds("fn foo int integer"),
            vec![
                TokenKind::Fn,
                TokenKind::Ident("foo".into()),
                TokenKind::KwInt,
                TokenKind::Ident("integer".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("0 42 9223372036854775807"),
            vec![
                TokenKind::Int(0),
                TokenKind::Int(42),
                TokenKind::Int(i64::MAX),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn rejects_overflowing_literal() {
        let err = lex("9223372036854775808").unwrap_err();
        assert!(err.message.contains("overflows"));
    }

    #[test]
    fn lexes_compound_operators() {
        assert_eq!(
            kinds("== != <= >= && || -> = < > ! & - %"),
            vec![
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Arrow,
                TokenKind::Assign,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Bang,
                TokenKind::Amp,
                TokenKind::Minus,
                TokenKind::Percent,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn skips_line_comments() {
        assert_eq!(
            kinds("1 // comment\n2"),
            vec![TokenKind::Int(1), TokenKind::Int(2), TokenKind::Eof]
        );
    }

    #[test]
    fn skips_block_comments() {
        assert_eq!(
            kinds("1 /* a\nb */ 2"),
            vec![TokenKind::Int(1), TokenKind::Int(2), TokenKind::Eof]
        );
    }

    #[test]
    fn rejects_unterminated_block_comment() {
        let err = lex("/* oops").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(lex("a ? b").is_err());
        assert!(lex("a | b").is_err());
        assert!(lex("a @ b").is_err());
    }

    #[test]
    fn token_spans_index_source() {
        let src = "let xy = 12;";
        let toks = lex(src).unwrap();
        assert_eq!(&src[toks[0].span.start..toks[0].span.end], "let");
        assert_eq!(&src[toks[1].span.start..toks[1].span.end], "xy");
        assert_eq!(&src[toks[3].span.start..toks[3].span.end], "12");
    }

    #[test]
    fn slash_followed_by_non_comment_is_division() {
        assert_eq!(
            kinds("a / b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Slash,
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }
}
