//! Name resolution and type checking for Mini.
//!
//! [`check`] validates a parsed [`Program`] and produces the side tables the
//! IR lowering consumes: the type of every expression, the resolution of every
//! variable reference, the callee of every call, and the local-variable slots
//! of every function.

use crate::ast::*;
use crate::error::{LangError, LangResult};
use crate::token::Span;
use crate::types::Type;
use std::collections::HashMap;

/// How a `Var` expression resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarTarget {
    /// Index into [`Program::globals`].
    Global(usize),
    /// Index into the enclosing function's parameter list.
    Param(usize),
    /// Index into the enclosing function's [`CheckInfo::fn_locals`] entry.
    Local(usize),
}

/// A declared local variable (one frame slot group).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalInfo {
    /// Source name (not unique: shadowing allocates a fresh slot).
    pub name: String,
    /// Resolved type.
    pub ty: Type,
}

/// Side tables produced by the checker.
#[derive(Debug, Clone, Default)]
pub struct CheckInfo {
    /// Natural (pre-decay) type of every expression.
    pub expr_types: HashMap<ExprId, Type>,
    /// Resolution of every `Var` expression.
    pub var_refs: HashMap<ExprId, VarTarget>,
    /// Callee (index into `Program::funcs`) of every `Call` expression.
    pub call_targets: HashMap<ExprId, usize>,
    /// Per function: every local declared anywhere in its body, in
    /// declaration order. Shadowed names get distinct slots.
    pub fn_locals: Vec<Vec<LocalInfo>>,
}

/// A program that has passed semantic checking, bundled with its side tables.
#[derive(Debug, Clone)]
pub struct CheckedProgram {
    /// The validated syntax tree.
    pub ast: Program,
    /// Checker side tables.
    pub info: CheckInfo,
}

impl CheckedProgram {
    /// Looks up the checked type of an expression.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program — that indicates a bug
    /// in the caller, not bad user input.
    pub fn type_of(&self, id: ExprId) -> &Type {
        self.info
            .expr_types
            .get(&id)
            .expect("expression id not from this program")
    }
}

/// Checks `program`, returning it with resolution/type side tables.
///
/// # Errors
///
/// Returns the first semantic error found: duplicate or unknown names, type
/// mismatches, bad `break`/`continue` placement, wrong arity, and so on.
pub fn check(program: Program) -> LangResult<CheckedProgram> {
    let mut checker = Checker::new(&program)?;
    for (i, f) in program.funcs.iter().enumerate() {
        checker.check_func(i, f)?;
    }
    Ok(CheckedProgram {
        ast: program,
        info: checker.info,
    })
}

/// Convenience: parse then check in one call.
///
/// # Errors
///
/// Propagates lexer, parser, or checker errors.
pub fn parse_and_check(src: &str) -> LangResult<CheckedProgram> {
    check(crate::parser::parse(src)?)
}

struct FuncSig {
    params: Vec<Type>,
    returns_value: bool,
}

struct Checker {
    globals: HashMap<String, (usize, Type)>,
    funcs: HashMap<String, usize>,
    sigs: Vec<FuncSig>,
    info: CheckInfo,
    // Per-function state.
    scopes: Vec<HashMap<String, VarTarget>>,
    cur_fn: usize,
    loop_depth: usize,
    /// Current recursion depth over nested statements/expressions;
    /// bounded by [`crate::MAX_NEST_DEPTH`]. The checker is reachable
    /// with programmatically built ASTs (the fuzzer constructs
    /// [`Program`] values directly), so it enforces the limit
    /// independently of the parser.
    nest_depth: usize,
}

impl Checker {
    fn new(program: &Program) -> LangResult<Self> {
        let mut globals = HashMap::new();
        for (i, g) in program.globals.iter().enumerate() {
            let ty = Type::from(&g.ty);
            if ty == Type::Ptr {
                return Err(LangError::check(
                    format!("global `{}` cannot be a pointer", g.name),
                    g.span,
                ));
            }
            if g.init.is_some() && !ty.is_scalar() {
                return Err(LangError::check(
                    format!("array global `{}` cannot have an initializer", g.name),
                    g.span,
                ));
            }
            if globals.insert(g.name.clone(), (i, ty)).is_some() {
                return Err(LangError::check(
                    format!("duplicate global `{}`", g.name),
                    g.span,
                ));
            }
        }
        let mut funcs = HashMap::new();
        let mut sigs = Vec::new();
        for (i, f) in program.funcs.iter().enumerate() {
            if funcs.insert(f.name.clone(), i).is_some() {
                return Err(LangError::check(
                    format!("duplicate function `{}`", f.name),
                    f.span,
                ));
            }
            let mut params = Vec::new();
            for p in &f.params {
                let ty = Type::from(&p.ty);
                if !ty.is_scalar() {
                    return Err(LangError::check(
                        format!(
                            "parameter `{}` has non-scalar type {ty}; pass arrays as `*int`",
                            p.name
                        ),
                        p.span,
                    ));
                }
                params.push(ty);
            }
            sigs.push(FuncSig {
                params,
                returns_value: f.returns_value,
            });
        }
        let info = CheckInfo {
            fn_locals: vec![Vec::new(); program.funcs.len()],
            ..CheckInfo::default()
        };
        Ok(Checker {
            globals,
            funcs,
            sigs,
            info,
            scopes: Vec::new(),
            cur_fn: 0,
            loop_depth: 0,
            nest_depth: 0,
        })
    }

    /// Enters one level of recursive nesting, erroring out past the limit.
    fn descend(&mut self, span: Span) -> LangResult<()> {
        self.nest_depth += 1;
        if self.nest_depth > crate::MAX_NEST_DEPTH {
            return Err(LangError::check(
                format!(
                    "nesting exceeds the maximum depth of {}",
                    crate::MAX_NEST_DEPTH
                ),
                span,
            ));
        }
        Ok(())
    }

    fn check_func(&mut self, index: usize, f: &FuncDecl) -> LangResult<()> {
        self.cur_fn = index;
        self.loop_depth = 0;
        self.nest_depth = 0;
        self.scopes.clear();
        let mut param_scope = HashMap::new();
        for (i, p) in f.params.iter().enumerate() {
            if param_scope
                .insert(p.name.clone(), VarTarget::Param(i))
                .is_some()
            {
                return Err(LangError::check(
                    format!("duplicate parameter `{}`", p.name),
                    p.span,
                ));
            }
        }
        self.scopes.push(param_scope);
        self.check_block(&f.body)?;
        self.scopes.pop();
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<(VarTarget, Type)> {
        for scope in self.scopes.iter().rev() {
            if let Some(&target) = scope.get(name) {
                let ty = match target {
                    VarTarget::Global(i) => {
                        unreachable!("globals are not in scope maps: {i}")
                    }
                    VarTarget::Param(i) => {
                        // Parameter types live in the current signature.
                        self.sigs[self.cur_fn].params[i].clone()
                    }
                    VarTarget::Local(i) => self.info.fn_locals[self.cur_fn][i].ty.clone(),
                };
                return Some((target, ty));
            }
        }
        self.globals
            .get(name)
            .map(|(i, ty)| (VarTarget::Global(*i), ty.clone()))
    }

    fn check_block(&mut self, block: &Block) -> LangResult<()> {
        self.scopes.push(HashMap::new());
        for stmt in &block.stmts {
            self.check_stmt(stmt)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn check_stmt(&mut self, stmt: &Stmt) -> LangResult<()> {
        self.descend(stmt.span)?;
        let r = self.check_stmt_inner(stmt);
        self.nest_depth -= 1;
        r
    }

    fn check_stmt_inner(&mut self, stmt: &Stmt) -> LangResult<()> {
        match &stmt.kind {
            StmtKind::Let { name, ty, init } => {
                let ty = Type::from(ty);
                if let Some(init) = init {
                    if !ty.is_scalar() {
                        return Err(LangError::check(
                            format!("array local `{name}` cannot have an initializer"),
                            stmt.span,
                        ));
                    }
                    let it = self.check_expr(init)?;
                    if !it.coerces_to(&ty) {
                        return Err(LangError::check(
                            format!("initializer of `{name}` has type {it}, expected {ty}"),
                            init.span,
                        ));
                    }
                }
                let slot = self.info.fn_locals[self.cur_fn].len();
                self.info.fn_locals[self.cur_fn].push(LocalInfo {
                    name: name.clone(),
                    ty,
                });
                self.scopes
                    .last_mut()
                    .expect("checker always has an open scope")
                    .insert(name.clone(), VarTarget::Local(slot));
                Ok(())
            }
            StmtKind::Assign { target, value } => {
                let tt = self.check_expr(target)?;
                if !tt.is_scalar() {
                    return Err(LangError::check(
                        format!("cannot assign to a value of type {tt}"),
                        target.span,
                    ));
                }
                let vt = self.check_expr(value)?;
                if !vt.coerces_to(&tt) {
                    return Err(LangError::check(
                        format!("cannot assign {vt} to {tt}"),
                        value.span,
                    ));
                }
                Ok(())
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.check_cond(cond)?;
                self.check_block(then_blk)?;
                if let Some(e) = else_blk {
                    self.check_block(e)?;
                }
                Ok(())
            }
            StmtKind::While { cond, body } => {
                self.check_cond(cond)?;
                self.loop_depth += 1;
                self.check_block(body)?;
                self.loop_depth -= 1;
                Ok(())
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                // The for header lives in its own scope so `for` headers do
                // not leak names; Mini's `for` init is an assignment, so this
                // mainly isolates future extensions.
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.check_stmt(init)?;
                }
                if let Some(cond) = cond {
                    self.check_cond(cond)?;
                }
                if let Some(step) = step {
                    self.check_stmt(step)?;
                }
                self.loop_depth += 1;
                self.check_block(body)?;
                self.loop_depth -= 1;
                self.scopes.pop();
                Ok(())
            }
            StmtKind::Return(value) => {
                let returns_value = self.sigs[self.cur_fn].returns_value;
                match (returns_value, value) {
                    (true, Some(e)) => {
                        let t = self.check_expr(e)?;
                        if t != Type::Int {
                            return Err(LangError::check(
                                format!("return value has type {t}, expected int"),
                                e.span,
                            ));
                        }
                        Ok(())
                    }
                    (true, None) => Err(LangError::check(
                        "this function must return a value",
                        stmt.span,
                    )),
                    (false, Some(e)) => Err(LangError::check(
                        "this function does not return a value",
                        e.span,
                    )),
                    (false, None) => Ok(()),
                }
            }
            StmtKind::Break => {
                if self.loop_depth == 0 {
                    Err(LangError::check("`break` outside of a loop", stmt.span))
                } else {
                    Ok(())
                }
            }
            StmtKind::Continue => {
                if self.loop_depth == 0 {
                    Err(LangError::check("`continue` outside of a loop", stmt.span))
                } else {
                    Ok(())
                }
            }
            StmtKind::Print(e) => {
                let t = self.check_expr(e)?;
                if t != Type::Int {
                    return Err(LangError::check(
                        format!("print takes an int, found {t}"),
                        e.span,
                    ));
                }
                Ok(())
            }
            StmtKind::Expr(e) => {
                // Only calls make sense as expression statements; allow a
                // void call here (the one context where unit is legal).
                if let ExprKind::Call(..) = e.kind {
                    self.check_call(e, /*value_required=*/ false)?;
                    Ok(())
                } else {
                    Err(LangError::check(
                        "expression statement has no effect (only calls are allowed)",
                        e.span,
                    ))
                }
            }
        }
    }

    fn check_cond(&mut self, cond: &Expr) -> LangResult<()> {
        let t = self.check_expr(cond)?;
        if t != Type::Int {
            return Err(LangError::check(
                format!("condition has type {t}, expected int"),
                cond.span,
            ));
        }
        Ok(())
    }

    /// Checks an expression in value context; records and returns its
    /// natural type.
    fn check_expr(&mut self, e: &Expr) -> LangResult<Type> {
        self.descend(e.span)?;
        let r = self.check_expr_inner(e);
        self.nest_depth -= 1;
        r
    }

    fn check_expr_inner(&mut self, e: &Expr) -> LangResult<Type> {
        let ty = match &e.kind {
            ExprKind::IntLit(_) => Type::Int,
            ExprKind::Var(name) => {
                let Some((target, ty)) = self.lookup(name) else {
                    return Err(LangError::check(
                        format!("unknown variable `{name}`"),
                        e.span,
                    ));
                };
                self.info.var_refs.insert(e.id, target);
                ty
            }
            ExprKind::Unary(op, operand) => {
                let t = self.check_expr(operand)?;
                if t != Type::Int {
                    return Err(LangError::check(
                        format!("unary `{op}` requires int, found {t}"),
                        operand.span,
                    ));
                }
                Type::Int
            }
            ExprKind::Binary(op, lhs, rhs) => {
                let lt = self.check_expr(lhs)?.decayed();
                let rt = self.check_expr(rhs)?.decayed();
                self.binary_type(*op, &lt, &rt, e.span)?
            }
            ExprKind::Call(..) => {
                let ret = self.check_call(e, /*value_required=*/ true)?;
                ret.expect("value_required guarantees a return type")
            }
            ExprKind::Index(base, index) => {
                let bt = self.check_expr(base)?;
                let it = self.check_expr(index)?;
                if it != Type::Int {
                    return Err(LangError::check(
                        format!("array index has type {it}, expected int"),
                        index.span,
                    ));
                }
                match bt.index_elem() {
                    Some(elem) => elem,
                    None => {
                        return Err(LangError::check(
                            format!("type {bt} cannot be indexed"),
                            base.span,
                        ));
                    }
                }
            }
            ExprKind::Deref(ptr) => {
                let pt = self.check_expr(ptr)?.decayed();
                if pt != Type::Ptr {
                    return Err(LangError::check(
                        format!("cannot dereference a value of type {pt}"),
                        ptr.span,
                    ));
                }
                Type::Int
            }
            ExprKind::AddrOf(lvalue) => {
                let lt = self.check_expr(lvalue)?;
                if lt != Type::Int {
                    return Err(LangError::check(
                        format!(
                            "`&` requires an int lvalue, found {lt} \
                             (arrays decay to pointers without `&`)"
                        ),
                        lvalue.span,
                    ));
                }
                Type::Ptr
            }
        };
        self.info.expr_types.insert(e.id, ty.clone());
        Ok(ty)
    }

    fn binary_type(&self, op: BinOp, lt: &Type, rt: &Type, span: Span) -> LangResult<Type> {
        use BinOp::*;
        let ok = match op {
            Add => matches!(
                (lt, rt),
                (Type::Int, Type::Int) | (Type::Ptr, Type::Int) | (Type::Int, Type::Ptr)
            ),
            Sub => matches!(
                (lt, rt),
                (Type::Int, Type::Int) | (Type::Ptr, Type::Int) | (Type::Ptr, Type::Ptr)
            ),
            Mul | Div | Rem | And | Or => lt == &Type::Int && rt == &Type::Int,
            Eq | Ne | Lt | Le | Gt | Ge => lt == rt && lt.is_scalar(),
        };
        if !ok {
            return Err(LangError::check(
                format!("invalid operand types {lt} {op} {rt}"),
                span,
            ));
        }
        Ok(match op {
            Add | Sub => {
                if lt == &Type::Ptr && rt == &Type::Ptr {
                    Type::Int // pointer difference
                } else if lt == &Type::Ptr || rt == &Type::Ptr {
                    Type::Ptr
                } else {
                    Type::Int
                }
            }
            _ => Type::Int,
        })
    }

    /// Checks a call expression; returns `Some(Type::Int)` if the callee
    /// returns a value, `None` otherwise.
    fn check_call(&mut self, e: &Expr, value_required: bool) -> LangResult<Option<Type>> {
        let ExprKind::Call(name, args) = &e.kind else {
            unreachable!("check_call on non-call");
        };
        let Some(&callee) = self.funcs.get(name) else {
            return Err(LangError::check(
                format!("unknown function `{name}`"),
                e.span,
            ));
        };
        let arity = self.sigs[callee].params.len();
        if args.len() != arity {
            return Err(LangError::check(
                format!(
                    "`{name}` takes {arity} argument{}, {} given",
                    if arity == 1 { "" } else { "s" },
                    args.len()
                ),
                e.span,
            ));
        }
        for (i, arg) in args.iter().enumerate() {
            let at = self.check_expr(arg)?;
            let pt = self.sigs[callee].params[i].clone();
            if !at.coerces_to(&pt) {
                return Err(LangError::check(
                    format!(
                        "argument {} of `{name}` has type {at}, expected {pt}",
                        i + 1
                    ),
                    arg.span,
                ));
            }
        }
        self.info.call_targets.insert(e.id, callee);
        let returns_value = self.sigs[callee].returns_value;
        if value_required && !returns_value {
            return Err(LangError::check(
                format!("`{name}` does not return a value"),
                e.span,
            ));
        }
        let ret = returns_value.then_some(Type::Int);
        if let Some(t) = &ret {
            self.info.expr_types.insert(e.id, t.clone());
        }
        Ok(ret)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_src(src: &str) -> LangResult<CheckedProgram> {
        parse_and_check(src)
    }

    fn assert_check_err(src: &str, needle: &str) {
        let err = check_src(src).unwrap_err();
        assert!(
            err.message.contains(needle),
            "error `{}` does not contain `{needle}`",
            err.message
        );
    }

    #[test]
    fn accepts_hello_world() {
        check_src("fn main() { print(42); }").unwrap();
    }

    #[test]
    fn resolves_globals_params_locals() {
        let p = check_src(
            "global g: int;\n\
             fn f(x: int) -> int { let y: int = x + g; return y; }\n\
             fn main() { print(f(1)); }",
        )
        .unwrap();
        let targets: Vec<_> = p.info.var_refs.values().copied().collect();
        assert!(targets.contains(&VarTarget::Global(0)));
        assert!(targets.contains(&VarTarget::Param(0)));
        assert!(targets.contains(&VarTarget::Local(0)));
    }

    #[test]
    fn shadowing_allocates_fresh_slots() {
        let p =
            check_src("fn main() { let x: int = 1; if x { let x: int = 2; print(x); } print(x); }")
                .unwrap();
        assert_eq!(p.info.fn_locals[0].len(), 2);
        assert_eq!(p.info.fn_locals[0][0].name, "x");
        assert_eq!(p.info.fn_locals[0][1].name, "x");
    }

    #[test]
    fn block_scoping_hides_inner_locals() {
        assert_check_err(
            "fn main() { if 1 { let y: int = 2; } print(y); }",
            "unknown variable `y`",
        );
    }

    #[test]
    fn rejects_duplicates() {
        assert_check_err("global x: int; global x: int;", "duplicate global");
        assert_check_err("fn f() {} fn f() {}", "duplicate function");
        assert_check_err("fn f(a: int, a: int) {}", "duplicate parameter");
    }

    #[test]
    fn rejects_unknowns() {
        assert_check_err("fn main() { print(zzz); }", "unknown variable");
        assert_check_err("fn main() { g(); }", "unknown function");
    }

    #[test]
    fn arity_and_argument_types() {
        assert_check_err("fn f(x: int) {} fn main() { f(); }", "takes 1 argument");
        assert_check_err(
            "global a: [int; 4]; fn f(x: int) {} fn main() { f(a); }",
            "expected int",
        );
        // 1-D arrays decay to *int arguments.
        check_src("global a: [int; 4]; fn f(p: *int) {} fn main() { f(a); }").unwrap();
        // Multi-dimensional arrays do not decay.
        assert_check_err(
            "global m: [[int; 4]; 2]; fn f(p: *int) {} fn main() { f(m); }",
            "expected *int",
        );
    }

    #[test]
    fn pointer_arithmetic_rules() {
        check_src("fn f(p: *int) { let q: *int = p + 1; print(*q); }").unwrap();
        check_src("fn f(p: *int, q: *int) { print(p - q); }").unwrap();
        assert_check_err("fn f(p: *int, q: *int) { let r: *int = p + q; }", "invalid");
        assert_check_err("fn f(p: *int) { print(p * 2); }", "invalid");
    }

    #[test]
    fn pointer_comparisons() {
        check_src("fn f(p: *int, q: *int) { if p == q { } if p < q { } }").unwrap();
        assert_check_err("fn f(p: *int) { if p == 0 { } }", "invalid");
    }

    #[test]
    fn deref_and_addrof() {
        check_src("fn main() { let x: int = 1; let p: *int = &x; *p = 2; print(x); }").unwrap();
        assert_check_err("fn main() { let x: int = 1; print(*x); }", "dereference");
        assert_check_err(
            "global a: [int; 4]; fn main() { let p: *int = &a; }",
            "arrays decay",
        );
        // &a[i] is fine.
        check_src("global a: [int; 4]; fn main() { let p: *int = &a[1]; print(*p); }").unwrap();
    }

    #[test]
    fn indexing_rules() {
        check_src("global m: [[int; 3]; 2]; fn main() { m[1][2] = 5; print(m[1][2]); }").unwrap();
        // Indexing a scalar is an error.
        assert_check_err("fn main() { let x: int = 1; print(x[0]); }", "indexed");
        // Partial indexing yields an array, which is not assignable.
        assert_check_err(
            "global m: [[int; 3]; 2]; fn main() { m[0] = 1; }",
            "cannot assign",
        );
        // Pointers index like arrays.
        check_src("fn f(p: *int) { p[3] = 1; print(p[3]); }").unwrap();
        // Index must be an int.
        assert_check_err(
            "global a: [int; 4]; fn f(p: *int) { print(a[p]); }",
            "index has type",
        );
    }

    #[test]
    fn return_type_rules() {
        assert_check_err("fn f() -> int { return; }", "must return a value");
        assert_check_err("fn f() { return 1; }", "does not return a value");
        assert_check_err(
            "fn f(p: *int) -> int { return p; }",
            "return value has type *int",
        );
    }

    #[test]
    fn break_continue_placement() {
        assert_check_err("fn main() { break; }", "outside of a loop");
        assert_check_err("fn main() { continue; }", "outside of a loop");
        check_src("fn main() { while 1 { break; } for ;; { continue; } }").unwrap();
    }

    #[test]
    fn void_calls_only_in_statement_position() {
        check_src("fn f() {} fn main() { f(); }").unwrap();
        assert_check_err(
            "fn f() {} fn main() { print(f()); }",
            "does not return a value",
        );
    }

    #[test]
    fn conditions_must_be_int() {
        assert_check_err("fn f(p: *int) { if p { } }", "condition has type *int");
        assert_check_err("global a: [int; 3]; fn main() { while a { } }", "condition");
    }

    #[test]
    fn array_global_initializer_rejected() {
        // Array globals cannot take scalar initializers; the parser only
        // permits literal inits, so express this via the checker.
        let err = check(crate::parser::parse("global a: [int; 3] = 5;").unwrap()).unwrap_err();
        assert!(err.message.contains("cannot have an initializer"));
    }

    #[test]
    fn local_array_initializer_rejected() {
        assert_check_err(
            "fn main() { let a: [int; 3] = 5; }",
            "cannot have an initializer",
        );
    }

    #[test]
    fn expression_statements_must_be_calls() {
        assert_check_err("fn main() { 1 + 2; }", "no effect");
    }

    #[test]
    fn expr_types_recorded_for_all_value_exprs() {
        let p = check_src("fn main() { let x: int = 1 + 2; print(x * 3); }").unwrap();
        // 1, 2, 1+2, x, 3, x*3 → six typed expressions.
        assert_eq!(p.info.expr_types.len(), 6);
        assert!(p.info.expr_types.values().all(|t| *t == Type::Int));
    }

    #[test]
    fn assignment_decay_to_pointer_local() {
        check_src("global a: [int; 8]; fn main() { let p: *int = a; print(*p); }").unwrap();
    }
}
