//! Error type shared by the lexer, parser, and semantic checker.

use crate::token::Span;
use std::error::Error;
use std::fmt;

/// An error produced while processing Mini source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    /// Which phase rejected the program.
    pub phase: Phase,
    /// Human-readable description of the problem.
    pub message: String,
    /// Location of the problem in the source.
    pub span: Span,
}

/// The front-end phase an error originated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Tokenization.
    Lex,
    /// Syntax analysis.
    Parse,
    /// Name resolution and type checking.
    Check,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Lex => write!(f, "lex"),
            Phase::Parse => write!(f, "parse"),
            Phase::Check => write!(f, "check"),
        }
    }
}

impl LangError {
    /// Creates a lexer error.
    pub fn lex(message: impl Into<String>, span: Span) -> Self {
        LangError {
            phase: Phase::Lex,
            message: message.into(),
            span,
        }
    }

    /// Creates a parser error.
    pub fn parse(message: impl Into<String>, span: Span) -> Self {
        LangError {
            phase: Phase::Parse,
            message: message.into(),
            span,
        }
    }

    /// Creates a semantic-checker error.
    pub fn check(message: impl Into<String>, span: Span) -> Self {
        LangError {
            phase: Phase::Check,
            message: message.into(),
            span,
        }
    }

    /// Renders the error with 1-based line/column resolved against `src`.
    pub fn render(&self, src: &str) -> String {
        let (line, col) = self.span.line_col(src);
        format!("{} error at {line}:{col}: {}", self.phase, self.message)
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} error at bytes {}: {}",
            self.phase, self.span, self.message
        )
    }
}

impl Error for LangError {}

/// Result alias used throughout the front end.
pub type LangResult<T> = Result<T, LangError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_reports_line_and_column() {
        let src = "fn main() {\n  ???\n}";
        let err = LangError::lex("unexpected character `?`", Span::new(14, 15));
        assert_eq!(
            err.render(src),
            "lex error at 2:3: unexpected character `?`"
        );
    }

    #[test]
    fn display_mentions_phase() {
        let err = LangError::parse("expected `;`", Span::new(0, 1));
        assert!(err.to_string().contains("parse error"));
    }
}
