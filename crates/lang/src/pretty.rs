//! Pretty-printer for Mini programs.
//!
//! Prints an [`ast::Program`] back to concrete Mini syntax such that
//! reparsing the output reproduces the same program. The printer is the
//! foundation of the fuzzer's shrinking loop (`ucm-fuzz` mutates ASTs and
//! must serialise every candidate back to source) and is therefore held to
//! a *fixpoint* round-trip invariant:
//!
//! ```text
//! print(parse(print(p))) == print(p)
//! ```
//!
//! String equality (rather than AST equality) sidesteps the two lossy
//! spots of the concrete syntax: spans and expression ids are fresh after
//! a reparse, and a negative [`ExprKind::IntLit`] prints as `-N`, which
//! reparses as `Unary(Neg, IntLit(N))` — both print identically, so the
//! fixpoint holds for every well-formed program.
//!
//! Parenthesisation is precedence-driven and minimal-ish: operands are
//! wrapped exactly when the grammar would otherwise reassociate them
//! (comparisons are non-associative in Mini, so comparison operands never
//! admit bare comparisons).

use crate::ast::*;

/// Binding strength of an expression for parenthesisation, loosest to
/// tightest. Mirrors the parser's precedence ladder.
const PREC_OR: u8 = 1;
const PREC_AND: u8 = 2;
const PREC_CMP: u8 = 3;
const PREC_ADD: u8 = 4;
const PREC_MUL: u8 = 5;
const PREC_UNARY: u8 = 6;
const PREC_POSTFIX: u8 = 7;
const PREC_ATOM: u8 = 8;

fn op_prec(op: BinOp) -> u8 {
    use BinOp::*;
    match op {
        Or => PREC_OR,
        And => PREC_AND,
        Eq | Ne | Lt | Le | Gt | Ge => PREC_CMP,
        Add | Sub => PREC_ADD,
        Mul | Div | Rem => PREC_MUL,
    }
}

fn expr_prec(e: &Expr) -> u8 {
    match &e.kind {
        ExprKind::IntLit(v) if *v < 0 => PREC_UNARY,
        ExprKind::IntLit(_) | ExprKind::Var(_) | ExprKind::Call(..) => PREC_ATOM,
        ExprKind::Binary(op, ..) => op_prec(*op),
        ExprKind::Unary(..) | ExprKind::Deref(_) | ExprKind::AddrOf(_) => PREC_UNARY,
        ExprKind::Index(..) => PREC_POSTFIX,
    }
}

/// Prints one expression as Mini source.
pub fn print_expr(e: &Expr) -> String {
    let mut s = String::new();
    write_expr(&mut s, e, 0);
    s
}

fn write_expr(out: &mut String, e: &Expr, min_prec: u8) {
    let prec = expr_prec(e);
    let need_parens = prec < min_prec;
    if need_parens {
        out.push('(');
    }
    match &e.kind {
        ExprKind::IntLit(v) => out.push_str(&v.to_string()),
        ExprKind::Var(name) => out.push_str(name),
        ExprKind::Unary(op, operand) => {
            out.push_str(&op.to_string());
            write_expr(out, operand, PREC_UNARY);
        }
        ExprKind::Binary(op, lhs, rhs) => {
            // Left-associative operators reprint their own level on the
            // left and one tighter on the right; non-associative
            // comparisons demand one tighter on both sides.
            let (lmin, rmin) = if op_prec(*op) == PREC_CMP {
                (PREC_ADD, PREC_ADD)
            } else {
                (prec, prec + 1)
            };
            write_expr(out, lhs, lmin);
            out.push(' ');
            out.push_str(&op.to_string());
            out.push(' ');
            write_expr(out, rhs, rmin);
        }
        ExprKind::Call(name, args) => {
            out.push_str(name);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a, 0);
            }
            out.push(')');
        }
        ExprKind::Index(base, index) => {
            write_expr(out, base, PREC_POSTFIX);
            out.push('[');
            write_expr(out, index, 0);
            out.push(']');
        }
        ExprKind::Deref(ptr) => {
            out.push('*');
            write_expr(out, ptr, PREC_UNARY);
        }
        ExprKind::AddrOf(lvalue) => {
            out.push('&');
            write_expr(out, lvalue, PREC_UNARY);
        }
    }
    if need_parens {
        out.push(')');
    }
}

/// Prints a whole program as Mini source, formatted with four-space
/// indentation and one blank line between top-level items.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for g in &p.globals {
        out.push_str(&format!("global {}: {}", g.name, g.ty));
        if let Some(v) = g.init {
            out.push_str(&format!(" = {v}"));
        }
        out.push_str(";\n");
    }
    for (i, f) in p.funcs.iter().enumerate() {
        if i > 0 || !p.globals.is_empty() {
            out.push('\n');
        }
        write_func(&mut out, f);
    }
    out
}

fn write_func(out: &mut String, f: &FuncDecl) {
    out.push_str(&format!("fn {}(", f.name));
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{}: {}", p.name, p.ty));
    }
    out.push(')');
    if f.returns_value {
        out.push_str(" -> int");
    }
    out.push(' ');
    write_block(out, &f.body, 0);
    out.push('\n');
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn write_block(out: &mut String, b: &Block, level: usize) {
    if b.stmts.is_empty() {
        out.push_str("{ }");
        return;
    }
    out.push_str("{\n");
    for s in &b.stmts {
        indent(out, level + 1);
        write_stmt(out, s, level + 1);
        out.push('\n');
    }
    indent(out, level);
    out.push('}');
}

/// Prints an assignment or expression statement without the trailing
/// semicolon — the form shared by statement position and `for` headers.
fn write_simple_stmt(out: &mut String, s: &Stmt) {
    match &s.kind {
        StmtKind::Assign { target, value } => {
            write_expr(out, target, 0);
            out.push_str(" = ");
            write_expr(out, value, 0);
        }
        StmtKind::Expr(e) => write_expr(out, e, 0),
        other => unreachable!("not a simple statement: {other:?}"),
    }
}

fn write_stmt(out: &mut String, s: &Stmt, level: usize) {
    match &s.kind {
        StmtKind::Let { name, ty, init } => {
            out.push_str(&format!("let {name}: {ty}"));
            if let Some(e) = init {
                out.push_str(" = ");
                write_expr(out, e, 0);
            }
            out.push(';');
        }
        StmtKind::Assign { .. } | StmtKind::Expr(_) => {
            write_simple_stmt(out, s);
            out.push(';');
        }
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            out.push_str("if ");
            write_expr(out, cond, 0);
            out.push(' ');
            write_block(out, then_blk, level);
            if let Some(e) = else_blk {
                out.push_str(" else ");
                // An `else if` chain is stored as a one-statement block
                // holding an `if`; print it back in chained form so the
                // reparse reproduces the same synthetic nesting.
                if e.stmts.len() == 1 {
                    if let StmtKind::If { .. } = &e.stmts[0].kind {
                        write_stmt(out, &e.stmts[0], level);
                        return;
                    }
                }
                write_block(out, e, level);
            }
        }
        StmtKind::While { cond, body } => {
            out.push_str("while ");
            write_expr(out, cond, 0);
            out.push(' ');
            write_block(out, body, level);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            out.push_str("for ");
            if let Some(i) = init {
                write_simple_stmt(out, i);
            }
            out.push_str("; ");
            if let Some(c) = cond {
                write_expr(out, c, 0);
            }
            out.push_str("; ");
            if let Some(st) = step {
                write_simple_stmt(out, st);
                out.push(' ');
            }
            write_block(out, body, level);
        }
        StmtKind::Return(value) => {
            out.push_str("return");
            if let Some(e) = value {
                out.push(' ');
                write_expr(out, e, 0);
            }
            out.push(';');
        }
        StmtKind::Break => out.push_str("break;"),
        StmtKind::Continue => out.push_str("continue;"),
        StmtKind::Print(e) => {
            out.push_str("print(");
            write_expr(out, e, 0);
            out.push_str(");");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_expr};

    fn fixpoint(src: &str) {
        let once = print_program(&parse(src).expect("seed parses"));
        let twice = print_program(&parse(&once).expect("printed source parses"));
        assert_eq!(once, twice, "print is not a reparse fixpoint for {src:?}");
    }

    #[test]
    fn prints_minimal_program() {
        let p = parse("fn main() { print(42); }").unwrap();
        assert_eq!(print_program(&p), "fn main() {\n    print(42);\n}\n");
    }

    #[test]
    fn expr_precedence_round_trips() {
        for src in [
            "1 + 2 * 3",
            "(1 + 2) * 3",
            "1 - (2 - 3)",
            "1 - 2 - 3",
            "a < b && c || d",
            "(a < b) == (c > d)",
            "-!x",
            "*p + 1",
            "&a[i]",
            "m[i][j]",
            "f(a, b + 1)[2]",
            "-(a + b)",
            "a / (b * c) % d",
        ] {
            let e = parse_expr(src).unwrap();
            let printed = print_expr(&e);
            let reparsed = parse_expr(&printed).unwrap();
            assert_eq!(
                print_expr(&reparsed),
                printed,
                "fixpoint failed for {src:?}"
            );
        }
    }

    #[test]
    fn negative_literal_prints_as_unary() {
        use crate::token::Span;
        let e = Expr {
            id: ExprId(0),
            kind: ExprKind::IntLit(-5),
            span: Span::default(),
        };
        assert_eq!(print_expr(&e), "-5");
        // And inside a subtraction the unary form still reparses.
        let sub = Expr {
            id: ExprId(1),
            kind: ExprKind::Binary(
                BinOp::Sub,
                Box::new(Expr {
                    id: ExprId(2),
                    kind: ExprKind::IntLit(1),
                    span: Span::default(),
                }),
                Box::new(e),
            ),
            span: Span::default(),
        };
        let printed = print_expr(&sub);
        assert_eq!(printed, "1 - -5");
        let reparsed = parse_expr(&printed).unwrap();
        assert_eq!(print_expr(&reparsed), printed);
    }

    #[test]
    fn full_programs_round_trip() {
        fixpoint(
            "global a: [int; 10]; global s: int = -7;\n\
             fn f(x: int, p: *int) -> int { return x + *p; }\n\
             fn main() {\n\
                 let i: int = 0;\n\
                 for i = 0; i < 10; i = i + 1 { a[i] = f(i, &s); }\n\
                 while i > 0 { i = i - 1; if a[i] > 3 { break; } else { continue; } }\n\
                 if i == 0 { print(a[0]); } else if i == 1 { print(1); } else { print(2); }\n\
             }",
        );
    }

    #[test]
    fn empty_bodies_and_for_variants_round_trip() {
        fixpoint("fn main() { for ; ; { break; } }");
        fixpoint("fn e() { } fn main() { e(); for i = 0; ; { break; } }");
        fixpoint("global i: int; fn main() { for ; i < 3; i = i + 1 { print(i); } }");
    }

    #[test]
    fn example_kernels_round_trip() {
        for src in [
            include_str!("../../../examples/mini/towers.mini"),
            include_str!("../../../examples/mini/bubble.mini"),
            include_str!("../../../examples/mini/queen.mini"),
            include_str!("../../../examples/mini/puzzle.mini"),
        ] {
            fixpoint(src);
        }
    }
}
