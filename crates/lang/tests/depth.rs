//! Regression tests for the front end's nesting-depth limits.
//!
//! Generator-shaped inputs (and adversarial ones) can nest expressions,
//! types, and statements arbitrarily deep; both the parser and the
//! checker must reject them with a typed [`LangError`] instead of
//! overflowing the stack and aborting the process.

use ucm_lang::ast::*;
use ucm_lang::error::Phase;
use ucm_lang::token::Span;
use ucm_lang::{check, parse, parse_and_check, LangError, MAX_NEST_DEPTH};

fn assert_depth_error(r: Result<impl std::fmt::Debug, LangError>, phase: Phase) {
    let err = r.expect_err("deeply nested input must be rejected");
    assert_eq!(err.phase, phase);
    assert!(
        err.message.contains("maximum depth"),
        "unexpected message: {}",
        err.message
    );
}

#[test]
fn deeply_nested_parens_error_cleanly() {
    let src = format!(
        "fn main() {{ print({}1{}); }}",
        "(".repeat(100_000),
        ")".repeat(100_000)
    );
    assert_depth_error(parse(&src), Phase::Parse);
}

#[test]
fn deeply_nested_unary_chain_errors_cleanly() {
    let src = format!("fn main() {{ print({}1); }}", "-".repeat(100_000));
    assert_depth_error(parse(&src), Phase::Parse);
}

#[test]
fn deeply_nested_types_error_cleanly() {
    let src = format!(
        "global m: {}int{};",
        "[".repeat(100_000),
        "; 1]".repeat(100_000)
    );
    assert_depth_error(parse(&src), Phase::Parse);
}

#[test]
fn deeply_nested_blocks_error_cleanly() {
    let src = format!(
        "fn main() {{ {} {} }}",
        "if 1 {".repeat(100_000),
        "}".repeat(100_000)
    );
    assert_depth_error(parse(&src), Phase::Parse);
}

#[test]
fn shallow_nesting_still_parses() {
    // Each parenthesis level passes both the `expr` and `unary_expr`
    // guards, so the deepest accepted paren tower is about half the
    // nominal limit; stay comfortably below that.
    let depth = MAX_NEST_DEPTH / 4;
    let src = format!(
        "fn main() {{ print({}1{}); }}",
        "(".repeat(depth),
        ")".repeat(depth)
    );
    parse_and_check(&src).expect("nesting below the limit is accepted");
}

#[test]
fn checker_bounds_depth_on_constructed_asts() {
    // The fuzzer hands `check` programmatically built ASTs that never went
    // through the parser, so the checker enforces the limit itself.
    let mut e = Expr {
        id: ExprId(0),
        kind: ExprKind::IntLit(1),
        span: Span::default(),
    };
    for i in 1..=2_000u32 {
        e = Expr {
            id: ExprId(i),
            kind: ExprKind::Unary(UnOp::Neg, Box::new(e)),
            span: Span::default(),
        };
    }
    let program = Program {
        globals: vec![],
        funcs: vec![FuncDecl {
            name: "main".into(),
            params: vec![],
            returns_value: false,
            body: Block {
                stmts: vec![Stmt {
                    kind: StmtKind::Print(e),
                    span: Span::default(),
                }],
                span: Span::default(),
            },
            span: Span::default(),
        }],
    };
    assert_depth_error(check(program), Phase::Check);
}
