//! Robustness fuzzing: the front end must reject garbage with errors, never
//! panics, and must be stable (same input → same result).

use proptest::prelude::*;
use ucm_lang::{lexer::lex, parse, parse_and_check};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_never_panics(input in ".{0,200}") {
        let _ = lex(&input);
    }

    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = parse(&input);
    }

    #[test]
    fn checker_never_panics_on_token_soup(
        words in prop::collection::vec(
            prop_oneof![
                Just("fn".to_string()),
                Just("let".to_string()),
                Just("global".to_string()),
                Just("if".to_string()),
                Just("while".to_string()),
                Just("return".to_string()),
                Just("int".to_string()),
                Just("print".to_string()),
                Just("main".to_string()),
                Just("x".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just("[".to_string()),
                Just("]".to_string()),
                Just(";".to_string()),
                Just(":".to_string()),
                Just("=".to_string()),
                Just("*".to_string()),
                Just("&".to_string()),
                Just("1".to_string()),
            ],
            0..40,
        )
    ) {
        let src = words.join(" ");
        let _ = parse_and_check(&src);
    }

    #[test]
    fn front_end_is_deterministic(input in ".{0,120}") {
        let a = parse(&input).map(|p| format!("{p:?}"));
        let b = parse(&input).map(|p| format!("{p:?}"));
        prop_assert_eq!(a.is_ok(), b.is_ok());
        if let (Ok(a), Ok(b)) = (a, b) {
            prop_assert_eq!(a, b);
        }
    }
}

#[test]
fn error_positions_are_within_input() {
    let bad_inputs = [
        "fn main( { }",
        "global : int;",
        "fn f() -> { }",
        "fn main() { let x = ; }",
        "fn main() { if { } }",
        "\u{0}\u{1}\u{2}",
        "fn main() { a[[; }",
    ];
    for src in bad_inputs {
        let err = ucm_lang::parse(src).unwrap_err();
        assert!(
            err.span.start <= src.len() && err.span.end <= src.len() + 1,
            "span {:?} escapes input of length {} for {src:?}",
            err.span,
            src.len()
        );
        // Rendering with line/col never panics either.
        let _ = err.render(src);
    }
}
