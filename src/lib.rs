//! # ucm — Unified Management of Registers and Cache
//!
//! Facade crate for the reproduction of *Chi & Dietz, "Unified Management of
//! Registers and Cache Using Liveness and Cache Bypass" (PLDI 1989)*. It
//! re-exports the full pipeline:
//!
//! * [`lang`] — Mini front end (lexer/parser/checker)
//! * [`ir`] — three-address IR with explicit named memory references
//! * [`analysis`] — dataflow, liveness, live ranges, alias sets
//! * [`regalloc`] — usage-count and Chaitin coloring allocators
//! * [`core`] — the unified register/cache management model (the paper)
//! * [`machine`] — MIPS-like target ISA, code generator, tracing VM
//! * [`cache`] — data-cache simulator with bypass and last-ref invalidation
//! * [`timing`] — cycle-level memory-timing model (write buffer, bus, CPI)
//! * [`workloads`] — the six DARPA/Stanford benchmarks of the evaluation

pub use ucm_analysis as analysis;
pub use ucm_cache as cache;
pub use ucm_core as core;
pub use ucm_ir as ir;
pub use ucm_lang as lang;
pub use ucm_machine as machine;
pub use ucm_regalloc as regalloc;
pub use ucm_timing as timing;
pub use ucm_workloads as workloads;
