//! Pipeline tour for compiler writers: shows the IR, the alias
//! classification of every memory reference, and the load/store flavour each
//! one receives under unified management.
//!
//! ```text
//! cargo run --example inspect_pipeline
//! ```

use ucm::analysis::alias::Classification;
use ucm::core::pipeline::{compile, CompilerOptions};
use ucm::ir::print::module_to_string;
use ucm::machine::MemTagger;

const PROGRAM: &str = "
global g: int;
global table: [int; 16];

fn mix(p: *int, k: int) -> int {
    *p = *p + k;
    return *p;
}

fn main() {
    let x: int = 1;
    g = mix(&x, 41);
    table[g % 16] = x;
    print(table[g % 16]);
}
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let checked = ucm::lang::parse_and_check(PROGRAM)?;
    let module = ucm::ir::lower(&checked)?;

    println!("==== IR after lowering ====\n");
    println!("{}", module_to_string(&module));

    println!("==== alias classification (paper \u{a7}4.1-4.2) ====\n");
    let classes = Classification::compute(&module);
    for fid in module.func_ids() {
        for (iref, instr) in module.func(fid).instrs() {
            if let Some(class) = classes.get(fid, iref) {
                println!(
                    "  {:<12} {iref:<8} {instr:<45} -> {class:?}",
                    module.func(fid).name
                );
            }
        }
    }
    let counts = classes.static_counts();
    println!(
        "\n  static: {} unambiguous / {} ambiguous ({:.0}% unambiguous)\n",
        counts.unambiguous,
        counts.ambiguous,
        100.0 * counts.unambiguous_fraction()
    );

    println!("==== annotated memory instructions (\u{a7}4.3 flavours) ====\n");
    let compiled = compile(PROGRAM, &CompilerOptions::default())?;
    for fid in compiled.module.func_ids() {
        for (iref, instr) in compiled.module.func(fid).instrs() {
            if instr.is_memory() {
                let tag = compiled.annotations.tag_of(fid, iref);
                println!(
                    "  {:<12} {:<45} -> {} (bypass={}, last_ref={})",
                    compiled.module.func(fid).name,
                    instr.to_string(),
                    tag.flavour,
                    u8::from(tag.flavour.bypass_bit()),
                    u8::from(tag.last_ref),
                );
            }
        }
    }
    Ok(())
}
