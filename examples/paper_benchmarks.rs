//! Runs the full evaluation suite of the paper (all six benchmarks at the
//! published sizes) and prints a Figure-5 style report. Use `--release`:
//! puzzle alone executes ~160M machine instructions.
//!
//! ```text
//! cargo run --release --example paper_benchmarks
//! ```

use ucm::cache::CacheConfig;
use ucm::core::pipeline::CompilerOptions;
use ucm::machine::VmConfig;
use ucm::workloads::paper_suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("running the six-benchmark suite (paper sizes)...\n");
    println!(
        "{:>8} | {:>8} {:>12} | {:>14} {:>15} {:>10}",
        "bench", "refs", "VM steps", "static unamb%", "dynamic unamb%", "reduction%"
    );
    for w in paper_suite() {
        let cmp = w.compare(
            &CompilerOptions::paper(),
            CacheConfig::default(),
            &VmConfig::default(),
        )?;
        println!(
            "{:>8} | {:>8} {:>12} | {:>14.1} {:>15.1} {:>10.1}",
            cmp.name,
            cmp.unified.counts.total(),
            cmp.unified.outcome.steps,
            cmp.static_unambiguous_pct(),
            cmp.dynamic_unambiguous_pct(),
            cmp.cache_ref_reduction_pct(),
        );
    }
    println!("\npaper (Figure 5): static 70-80%, dynamic 45-75%, reduction ~60%");
    Ok(())
}
