//! Cache-design exploration for architects: sweeps geometry and replacement
//! policy for one benchmark and prints hit rates and bus traffic under both
//! management schemes.
//!
//! ```text
//! cargo run --release --example cache_explorer [benchmark]
//! ```
//!
//! `benchmark` is one of `bubble`, `intmm`, `queen`, `sieve`, `towers`
//! (default `sieve`, scaled for a quick run).

use ucm::cache::{CacheConfig, PolicyKind};
use ucm::core::evaluate::compare;
use ucm::core::pipeline::CompilerOptions;
use ucm::machine::VmConfig;
use ucm::workloads as wl;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "sieve".into());
    let w = match which.as_str() {
        "bubble" => wl::bubble::workload(200),
        "intmm" => wl::intmm::workload(24),
        "queen" => wl::queen::workload(7),
        "sieve" => wl::sieve::workload(4095, 2),
        "towers" => wl::towers::workload(12),
        other => {
            eprintln!("unknown benchmark `{other}`");
            std::process::exit(1);
        }
    };
    println!("exploring cache designs for `{}`\n", w.name);
    println!(
        "{:>6} {:>5} {:>9} | {:>10} {:>12} | {:>10} {:>12}",
        "size", "ways", "policy", "conv hit%", "conv bus", "uni hit%", "uni bus"
    );
    for size in [64usize, 256, 1024] {
        for ways in [1usize, 4] {
            for policy in [PolicyKind::Lru, PolicyKind::Fifo] {
                let cfg = CacheConfig {
                    size_words: size,
                    associativity: ways,
                    policy,
                    ..CacheConfig::default()
                };
                let cmp = compare(
                    &w.name,
                    &w.source,
                    &CompilerOptions::paper(),
                    cfg,
                    &VmConfig::default(),
                )?;
                let hit =
                    |m: &ucm::core::evaluate::RunMeasurement| 100.0 * (1.0 - m.cache.miss_rate());
                println!(
                    "{size:>6} {ways:>5} {policy:>9} | {:>9.1} {:>12} | {:>9.1} {:>12}",
                    hit(&cmp.conventional),
                    cmp.conventional.cache.bus_words(),
                    hit(&cmp.unified),
                    cmp.unified.cache.bus_words(),
                );
            }
        }
    }
    println!(
        "\n(hit% is over references entering the cache; unified keeps unambiguous \
         traffic out entirely)"
    );
    Ok(())
}
