//! Quickstart: compile a Mini program under both management schemes, run it
//! on the simulated machine, and compare data-cache traffic.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ucm::cache::CacheConfig;
use ucm::core::evaluate::compare;
use ucm::core::pipeline::CompilerOptions;
use ucm::machine::VmConfig;

const PROGRAM: &str = "
global histogram: [int; 64];
global total: int;

fn bump(bucket: int) {
    histogram[bucket] = histogram[bucket] + 1;
    total = total + 1;
}

fn main() {
    let seed: int = 99;
    let i: int = 0;
    while i < 5000 {
        seed = (seed * 1309 + 13849) % 65536;
        bump(seed % 64);
        i = i + 1;
    }
    print(total);
    print(histogram[0] + histogram[63]);
}
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // CompilerOptions::paper() models the 1989 codegen the paper measured;
    // CompilerOptions::default() is a modern register allocator.
    let cmp = compare(
        "quickstart",
        PROGRAM,
        &CompilerOptions::paper(),
        CacheConfig::default(),
        &VmConfig::default(),
    )?;

    println!("program output        : {:?}", cmp.unified.outcome.output);
    println!("data references       : {}", cmp.unified.counts.total());
    println!(
        "static unambiguous    : {:.1}%",
        cmp.static_unambiguous_pct()
    );
    println!(
        "dynamic unambiguous   : {:.1}%",
        cmp.dynamic_unambiguous_pct()
    );
    println!(
        "cache refs, conv      : {}",
        cmp.conventional.cache.cache_refs()
    );
    println!("cache refs, unified   : {}", cmp.unified.cache.cache_refs());
    println!(
        "cache-ref reduction   : {:.1}%  (the paper's Figure-5 quantity)",
        cmp.cache_ref_reduction_pct()
    );
    println!(
        "write-backs saved     : {} -> {}",
        cmp.conventional.cache.writebacks, cmp.unified.cache.writebacks
    );
    Ok(())
}
